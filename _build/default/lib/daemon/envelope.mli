(** Daemon-level payload envelope.

    The Spread-like daemon rides on the ring's total order: every client
    operation that affects shared state (application multicasts, group joins
    and leaves, session re-announcements after a configuration change) is
    encoded as an envelope and multicast as an ordinary ring payload. All
    daemons therefore apply group-state updates in exactly the same order. *)

type t =
  | App of { sender : string; groups : string list; payload : bytes }
      (** Application message to every member of each listed group
          (multi-group multicast: delivered once per recipient, ordered
          consistently across groups). *)
  | Join of { member : string; group : string }
  | Leave of { member : string; group : string }
  | Batch of t list
      (** Several small envelopes packed into one protocol packet — the
          packing feature Spread uses to amortize per-packet costs over
          small messages (paper Section IV-A.3). Never nested. *)

val encode : t -> bytes

val decode : bytes -> t
(** @raise Aring_wire.Codec.Decode_error on malformed input. *)

val member_name : daemon:int -> session:string -> string
(** Canonical member name, Spread-style: ["#session#daemon"]. *)

val encoded_size : t -> int
(** Size of [encode t] (used by the packer to respect its threshold). *)

val pp : Format.formatter -> t -> unit
