lib/transport/udp_runtime.ml: Aring_ring Aring_util Aring_wire Bytes Codec Float List Message Participant Types Unix
