lib/transport/udp_runtime.mli: Aring_ring Aring_wire Message Participant Types
