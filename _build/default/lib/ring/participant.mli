(** The runtime-facing interface of a protocol participant.

    Both runtimes (the discrete-event simulator and the real UDP loop) drive
    participants through this one interface, so a bare operational {!Node}
    and a full membership-capable {!Member} are interchangeable. The driving
    loop is:

    {v
      p.receive msg                  (* on packet arrival; may drop *)
      match p.take_next () with      (* when the CPU is free *)
      | Some msg -> interpret (p.process msg)
      | None -> idle
    v}

    Timers are an extensible variant so each layer (ordering engine,
    membership algorithm) can add its own keys; runtimes treat them as
    opaque tokens to hand back after the requested delay. *)

open Aring_wire

type timer = ..
(** Opaque timer key, extended by each protocol layer. *)

type view = {
  view_id : Types.ring_id;
  members : Types.pid list;  (** In ring order. *)
  transitional : bool;
      (** A transitional configuration delivers the surviving messages of
          the old configuration to the surviving members before the next
          regular configuration is installed (EVS). *)
}
(** A configuration (membership view) delivered to the application. *)

type action =
  | Unicast of Types.pid * Message.t
  | Multicast of Message.t  (** To every other reachable participant. *)
  | Deliver of Message.data  (** Application message, in total order. *)
  | Deliver_config of view
      (** Configuration change notification, ordered with respect to the
          message stream (EVS semantics). *)
  | Arm_timer of timer * int  (** Delay in nanoseconds. *)
  | Token_loss_detected
      (** Only emitted by a bare {!Node}; a {!Member} handles token loss
          internally by starting the membership algorithm. *)

type t = {
  pid : Types.pid;
  submit : Types.service -> bytes -> unit;
  receive : Message.t -> [ `Queued | `Dropped ];
  has_work : unit -> bool;
  take_next : unit -> Message.t option;
  process : Message.t -> action list;
  fire_timer : timer -> action list;
  start : unit -> action list;
      (** Actions to perform when the participant comes up. *)
}

val pp_view : Format.formatter -> view -> unit
