(** Message-type priority switching (Section III-C of the paper).

    A participant processing backlog must decide whether to handle a waiting
    token or waiting data messages first. Data messages get high priority
    right after a token is processed; the token's priority is raised again
    once evidence arrives that the predecessor has moved on to the next
    round:

    - {b Method 1 (aggressive)}: any data message the predecessor initiated
      in the next round raises the token's priority.
    - {b Method 2 (conservative)}: only a next-round data message the
      predecessor sent {e after} releasing the token (its post-token phase)
      raises the token's priority. With a zero accelerated window this makes
      the protocol identical to the original Ring protocol.

    These decisions affect performance only, never correctness. *)

open Aring_wire

type t

val create : Params.priority_method -> t

val token_has_priority : t -> bool
(** When [true], a queued token is processed before queued data. *)

val note_token_processed : t -> unit
(** The engine accepted a token: data messages regain high priority. *)

val note_data_processed :
  t -> predecessor:Types.pid -> current_round:Types.round -> Message.data -> unit
(** Inspect a processed data message for the round-advance evidence that
    raises the token's priority again. [current_round] is the engine's round
    (the last token it accepted). *)
