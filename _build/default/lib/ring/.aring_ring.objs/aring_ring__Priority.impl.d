lib/ring/priority.ml: Aring_wire Message Params
