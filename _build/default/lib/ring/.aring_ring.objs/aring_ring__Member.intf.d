lib/ring/member.mli: Aring_wire Node Params Participant Types
