lib/ring/engine.mli: Aring_wire Message Params Types
