lib/ring/params.ml: Format
