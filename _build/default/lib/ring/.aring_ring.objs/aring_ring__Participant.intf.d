lib/ring/participant.mli: Aring_wire Format Message Types
