lib/ring/member.ml: Aring_util Aring_wire Array Engine Hashtbl List Logs Message Node Option Params Participant Queue Types
