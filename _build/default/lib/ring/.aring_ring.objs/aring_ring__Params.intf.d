lib/ring/params.mli: Format
