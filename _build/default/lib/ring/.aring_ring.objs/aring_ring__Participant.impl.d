lib/ring/participant.ml: Aring_wire Format Message Types
