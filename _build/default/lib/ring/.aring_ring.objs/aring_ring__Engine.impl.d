lib/ring/engine.ml: Aring_wire Array Hashtbl List Message Params Queue Types
