lib/ring/node.ml: Aring_util Aring_wire Array Engine List Message Params Participant Priority
