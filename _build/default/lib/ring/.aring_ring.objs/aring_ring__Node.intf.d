lib/ring/node.mli: Aring_wire Engine Message Params Participant Types
