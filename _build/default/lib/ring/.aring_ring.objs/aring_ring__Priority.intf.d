lib/ring/priority.mli: Aring_wire Message Params Types
