open Aring_wire

type t = { mode : Params.priority_method; mutable token_high : bool }

let create mode = { mode; token_high = false }

let token_has_priority t = t.token_high

let note_token_processed t = t.token_high <- false

let note_data_processed t ~predecessor ~current_round (d : Message.data) =
  if d.pid = predecessor && d.d_round = current_round + 1 then
    match t.mode with
    | Params.Aggressive -> t.token_high <- true
    | Params.Conservative -> if d.post_token then t.token_high <- true
