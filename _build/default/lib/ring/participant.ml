open Aring_wire

type timer = ..

type view = {
  view_id : Types.ring_id;
  members : Types.pid list;
  transitional : bool;
}

type action =
  | Unicast of Types.pid * Message.t
  | Multicast of Message.t
  | Deliver of Message.data
  | Deliver_config of view
  | Arm_timer of timer * int
  | Token_loss_detected

type t = {
  pid : Types.pid;
  submit : Types.service -> bytes -> unit;
  receive : Message.t -> [ `Queued | `Dropped ];
  has_work : unit -> bool;
  take_next : unit -> Message.t option;
  process : Message.t -> action list;
  fire_timer : timer -> action list;
  start : unit -> action list;
}

let pp_view ppf v =
  Format.fprintf ppf "%s(%a: %a)"
    (if v.transitional then "trans" else "reg")
    Types.pp_ring_id v.view_id
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    v.members
