type net = {
  net_name : string;
  bandwidth_bps : int;
  latency_ns : int;
  switch_port_buffer : int;
  loss_prob : float;
  mtu : int;
}

type tier = {
  tier_name : string;
  token_proc_ns : int;
  data_proc_ns : int;
  frag_ns : int;
  send_op_ns : int;
  deliver_ns : int;
  submit_ns : int;
  extra_data_header : int;
}

let gigabit =
  {
    net_name = "1GbE";
    bandwidth_bps = 1_000_000_000;
    latency_ns = 40_000;
    switch_port_buffer = 768 * 1024;
    loss_prob = 0.0;
    mtu = 1500;
  }

let ten_gigabit =
  {
    net_name = "10GbE";
    bandwidth_bps = 10_000_000_000;
    latency_ns = 18_000;
    switch_port_buffer = 1024 * 1024;
    loss_prob = 0.0;
    mtu = 1500;
  }

let library =
  {
    tier_name = "library";
    token_proc_ns = 2_000;
    data_proc_ns = 500;
    frag_ns = 1_700;
    send_op_ns = 1_200;
    deliver_ns = 250;
    submit_ns = 250;
    extra_data_header = 0;
  }

let daemon =
  {
    tier_name = "daemon";
    token_proc_ns = 2_600;
    data_proc_ns = 800;
    frag_ns = 1_700;
    send_op_ns = 1_300;
    deliver_ns = 950;
    submit_ns = 900;
    extra_data_header = 24;
  }

let spread =
  {
    tier_name = "spread";
    token_proc_ns = 8_000;
    data_proc_ns = 1_200;
    frag_ns = 1_700;
    send_op_ns = 1_700;
    deliver_ns = 2_100;
    submit_ns = 1_300;
    extra_data_header = 103;
  }

let all_tiers = [ library; daemon; spread ]

let with_loss net loss_prob = { net with loss_prob }

let with_jumbo_frames net =
  { net with net_name = net.net_name ^ "+jumbo"; mtu = 9000 }

let tx_ns net bytes = bytes * 8 * 1_000_000_000 / net.bandwidth_bps

let data_proc_cost tier ~mtu ~wire_bytes =
  let frags = (wire_bytes + mtu - 1) / mtu in
  tier.data_proc_ns + (max 1 frags * tier.frag_ns)
