(** Calibrated hardware and implementation-tier profiles.

    The paper's evaluation ran on physical 1-gigabit / 10-gigabit clusters
    with three implementations (library prototype, daemon prototype, the
    Spread toolkit). We reproduce those axes as two profile records:

    - {!net} describes the network fabric: link rate, one-way latency,
      switch output-port buffering, and random loss. Switch buffering is
      the mechanism the accelerated protocol exploits, so it is modelled
      explicitly (drop-tail per output port).
    - {!tier} describes one implementation's CPU cost structure: per-message
      processing, per-send syscall cost, client-delivery cost, and the
      extra protocol headers it puts on the wire. The paper's core claim is
      about the ratio between these costs and wire time, which these
      records make explicit and reproducible.

    The preset numbers are calibrated so that the simulated system lands in
    the regimes the paper reports (1G saturation; 10G processing-bound with
    the library < daemon < Spread overhead ordering). See EXPERIMENTS.md. *)

type net = {
  net_name : string;
  bandwidth_bps : int;  (** Link rate of NICs and switch ports. *)
  latency_ns : int;
      (** Fixed one-way latency (propagation + switch forwarding + host
          network stack), excluding serialization, which is computed from
          packet size and [bandwidth_bps]. *)
  switch_port_buffer : int;  (** Drop-tail buffer per switch output port. *)
  loss_prob : float;  (** Random per-packet, per-receiver loss. *)
  mtu : int;
      (** Ethernet MTU: 1500 standard, 9000 with jumbo frames. Determines
          how many frames a UDP datagram spans (and therefore its kernel
          processing cost) — the paper's future-work conjecture is that
          jumbo frames would improve the large-datagram runs further. *)
}

type tier = {
  tier_name : string;
  token_proc_ns : int;  (** Handling a received token (before sends). *)
  data_proc_ns : int;  (** Handling a received data message. *)
  frag_ns : int;
      (** Kernel cost per MTU-sized frame of a received datagram
          (interrupt, copy, reassembly): an 8850-byte UDP datagram spans
          six fragments but is still one protocol message — this is what
          larger datagrams amortize (Section IV-A.3). *)
  send_op_ns : int;  (** One multicast/unicast send operation. *)
  deliver_ns : int;  (** Delivering one message to the client. *)
  submit_ns : int;  (** Accepting one message from the client. *)
  extra_data_header : int;
      (** Header bytes this implementation adds beyond the base wire
          format (Spread's descriptive group/sender names are large). *)
}

val gigabit : net
(** 1-gigabit network (Catalyst 2960 class). *)

val ten_gigabit : net
(** 10-gigabit network (Arista 7100T class). *)

val library : tier
(** Library-based prototype: no client communication at all. *)

val daemon : tier
(** Daemon-based prototype: client IPC on the critical path. *)

val spread : tier
(** Full Spread toolkit: large headers, group-name analysis on delivery. *)

val all_tiers : tier list

val with_loss : net -> float -> net
(** [with_loss net p] is [net] with random loss probability [p]. *)

val with_jumbo_frames : net -> net
(** [with_jumbo_frames net] raises the MTU to 9000 bytes. *)

val tx_ns : net -> int -> int
(** [tx_ns net bytes] is the serialization delay of a [bytes]-long packet. *)

val data_proc_cost : tier -> mtu:int -> wire_bytes:int -> int
(** Total CPU cost of processing one received data message whose on-wire
    datagram is [wire_bytes] long on a network with the given [mtu]. *)
