lib/sim/netsim.ml: Aring_ring Aring_util Aring_wire Array List Message Participant Profile
