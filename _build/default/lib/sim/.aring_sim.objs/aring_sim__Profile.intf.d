lib/sim/profile.mli:
