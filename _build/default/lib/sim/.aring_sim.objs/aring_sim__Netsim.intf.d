lib/sim/netsim.mli: Aring_ring Aring_wire Message Participant Profile Types
