lib/sim/profile.ml:
