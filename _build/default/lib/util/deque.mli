(** Imperative double-ended queue backed by a growable circular buffer.

    Used for the per-node receive queues (token socket / data socket) and the
    pre-token multicast queue of the ordering engine. All operations are
    amortized O(1). *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty deque. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit
(** [push_back d x] appends [x] at the back of [d]. *)

val push_front : 'a t -> 'a -> unit
(** [push_front d x] prepends [x] at the front of [d]. *)

val pop_front : 'a t -> 'a option
(** [pop_front d] removes and returns the front element. *)

val pop_back : 'a t -> 'a option
(** [pop_back d] removes and returns the back element. *)

val peek_front : 'a t -> 'a option
val peek_back : 'a t -> 'a option

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f d] applies [f] front-to-back. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** [fold f init d] folds front-to-back. *)

val to_list : 'a t -> 'a list
(** [to_list d] is the elements front-to-back. *)

val exists : ('a -> bool) -> 'a t -> bool
