type 'a t = {
  mutable data : 'a array;
  mutable head : int; (* index of front element when size > 0 *)
  mutable size : int;
}

let create () = { data = [||]; head = 0; size = 0 }

let length d = d.size

let is_empty d = d.size = 0

let capacity d = Array.length d.data

(* Grow to double capacity, re-packing elements at offset 0. *)
let grow d seed =
  let old_cap = capacity d in
  let cap = max 16 (2 * old_cap) in
  let data = Array.make cap seed in
  for i = 0 to d.size - 1 do
    data.(i) <- d.data.((d.head + i) mod old_cap)
  done;
  d.data <- data;
  d.head <- 0

let push_back d x =
  if d.size >= capacity d then grow d x;
  d.data.((d.head + d.size) mod capacity d) <- x;
  d.size <- d.size + 1

let push_front d x =
  if d.size >= capacity d then grow d x;
  d.head <- (d.head - 1 + capacity d) mod capacity d;
  d.data.(d.head) <- x;
  d.size <- d.size + 1

let pop_front d =
  if d.size = 0 then None
  else begin
    let x = d.data.(d.head) in
    d.head <- (d.head + 1) mod capacity d;
    d.size <- d.size - 1;
    Some x
  end

let pop_back d =
  if d.size = 0 then None
  else begin
    let x = d.data.((d.head + d.size - 1) mod capacity d) in
    d.size <- d.size - 1;
    Some x
  end

let peek_front d = if d.size = 0 then None else Some d.data.(d.head)

let peek_back d =
  if d.size = 0 then None
  else Some d.data.((d.head + d.size - 1) mod capacity d)

let clear d =
  d.head <- 0;
  d.size <- 0

let iter f d =
  for i = 0 to d.size - 1 do
    f d.data.((d.head + i) mod capacity d)
  done

let fold f init d =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) d;
  !acc

let to_list d = List.rev (fold (fun acc x -> x :: acc) [] d)

let exists p d =
  let rec loop i =
    if i >= d.size then false
    else if p d.data.((d.head + i) mod capacity d) then true
    else loop (i + 1)
  in
  loop 0
