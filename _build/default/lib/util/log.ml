let setup ?(level = Logs.Warning) () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some level)

let ring_src = Logs.Src.create "accelring.ring" ~doc:"Ordering protocol"
let memb_src = Logs.Src.create "accelring.memb" ~doc:"Membership algorithm"
let sim_src = Logs.Src.create "accelring.sim" ~doc:"Network simulator"
let daemon_src = Logs.Src.create "accelring.daemon" ~doc:"Daemon layer"
