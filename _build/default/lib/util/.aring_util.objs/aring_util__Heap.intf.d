lib/util/heap.mli:
