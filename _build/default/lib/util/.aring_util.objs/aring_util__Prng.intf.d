lib/util/prng.mli:
