lib/util/deque.mli:
