lib/util/log.ml: Logs Logs_fmt
