(** Logging setup shared by executables and tests.

    A thin wrapper over [Logs] that installs an [Fmt]-based reporter and
    creates per-subsystem sources. *)

val setup : ?level:Logs.level -> unit -> unit
(** [setup ~level ()] installs a formatted stderr reporter. Defaults to
    [Logs.Warning] so tests stay quiet unless asked. *)

val ring_src : Logs.src
(** Log source for the ordering protocol. *)

val memb_src : Logs.src
(** Log source for the membership algorithm. *)

val sim_src : Logs.src
(** Log source for the network simulator. *)

val daemon_src : Logs.src
(** Log source for the Spread-like daemon layer. *)
