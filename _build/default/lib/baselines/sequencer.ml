open Aring_wire
open Aring_ring
module Deque = Aring_util.Deque

type Participant.timer += Gap_check of int

let history_window = 200_000

let gap_check_ns = 2_000_000 (* 2 ms between NACK rounds *)

let max_nack_batch = 256

(* A marker ring id so sequencer packets never collide with ring traffic. *)
let seq_ring : Types.ring_id = { rep = -1; ring_seq = -1 }

type t = {
  me : Types.pid;
  n : int;
  sequencer : Types.pid;
  inbox : Message.t Deque.t;
  (* Receiver state. *)
  mutable expected : Types.seqno;  (* next sequence number to deliver *)
  pending : (Types.seqno, Message.data) Hashtbl.t;
  mutable high_seen : Types.seqno;
  mutable gap_timer_armed : bool;
  mutable gap_gen : int;
  (* Sequencer state. *)
  mutable next_seq : Types.seqno;
  history : (Types.seqno, Message.data) Hashtbl.t;
  (* Stats. *)
  mutable delivered_count : int;
  mutable nacks_sent : int;
}

let create ~me ~n ?(sequencer = 0) () =
  {
    me;
    n;
    sequencer;
    inbox = Deque.create ();
    expected = 1;
    pending = Hashtbl.create 256;
    high_seen = 0;
    gap_timer_armed = false;
    gap_gen = 0;
    next_seq = 1;
    history = Hashtbl.create 1024;
    delivered_count = 0;
    nacks_sent = 0;
  }

let delivered_count t = t.delivered_count
let nacks_sent t = t.nacks_sent

let is_sequencer t = t.me = t.sequencer

(* Deliver everything contiguous from [expected]. *)
let deliver_ready t =
  let rec loop acc =
    match Hashtbl.find_opt t.pending t.expected with
    | None -> List.rev acc
    | Some d ->
        Hashtbl.remove t.pending t.expected;
        t.expected <- t.expected + 1;
        t.delivered_count <- t.delivered_count + 1;
        loop (Participant.Deliver d :: acc)
  in
  loop []

let arm_gap_timer t =
  if t.gap_timer_armed then []
  else begin
    t.gap_timer_armed <- true;
    t.gap_gen <- t.gap_gen + 1;
    [ Participant.Arm_timer (Gap_check t.gap_gen, gap_check_ns) ]
  end

(* Sequencer: stamp and multicast one message. *)
let sequence t (d : Message.data) =
  let stamped = { d with seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  Hashtbl.replace t.history stamped.seq stamped;
  if stamped.seq > history_window then
    Hashtbl.remove t.history (stamped.seq - history_window);
  (* Deliver locally (multicast does not loop back). *)
  Hashtbl.replace t.pending stamped.seq stamped;
  (Participant.Multicast (Message.Data stamped) :: deliver_ready t)

let handle_ordered t (d : Message.data) =
  if d.seq < t.expected || Hashtbl.mem t.pending d.seq then []
  else begin
    Hashtbl.replace t.pending d.seq d;
    if d.seq > t.high_seen then t.high_seen <- d.seq;
    let delivered = deliver_ready t in
    let nack_timer =
      if t.expected <= t.high_seen then arm_gap_timer t else []
    in
    delivered @ nack_timer
  end

let handle_data t (d : Message.data) =
  if d.seq = 0 then
    (* A raw submission. At the sequencer: order it. At the submitting
       node: forward it (submissions are routed through the own inbox so
       the runtime charges send cost uniformly). *)
    if is_sequencer t then sequence t d
    else [ Participant.Unicast (t.sequencer, Message.Data d) ]
  else handle_ordered t d

(* NACK: a Token whose rtr lists the missing seqs; aru_id is the requester. *)
let handle_nack t (tok : Message.token) =
  if not (is_sequencer t) then []
  else
    match tok.aru_id with
    | None -> []
    | Some requester ->
        List.filter_map
          (fun seq ->
            match Hashtbl.find_opt t.history seq with
            | Some d -> Some (Participant.Unicast (requester, Message.Data d))
            | None -> None)
          tok.rtr

let fire_gap_check t gen =
  if gen <> t.gap_gen then []
  else begin
    t.gap_timer_armed <- false;
    if t.expected > t.high_seen then []
    else begin
      let rec missing seq budget acc =
        if seq > t.high_seen || budget = 0 then List.rev acc
        else if Hashtbl.mem t.pending seq then missing (seq + 1) budget acc
        else missing (seq + 1) (budget - 1) (seq :: acc)
      in
      let gaps = missing t.expected max_nack_batch [] in
      if gaps = [] then []
      else begin
        t.nacks_sent <- t.nacks_sent + 1;
        let nack : Message.token =
          {
            t_ring = seq_ring;
            token_id = 0;
            t_round = 0;
            t_seq = 0;
            aru = 0;
            aru_id = Some t.me;
            fcc = 0;
            rtr = gaps;
          }
        in
        Participant.Unicast (t.sequencer, Message.Token nack) :: arm_gap_timer t
      end
    end
  end

let submit t _service payload =
  (* Route through the inbox so processing/sending is charged like any
     other work by the driving runtime. *)
  let d : Message.data =
    {
      d_ring = seq_ring;
      seq = 0;
      pid = t.me;
      d_round = 0;
      post_token = false;
      service = Types.Agreed;
      payload;
    }
  in
  Deque.push_back t.inbox (Message.Data d)

let participant t : Participant.t =
  {
    pid = t.me;
    submit = (fun service payload -> submit t service payload);
    receive =
      (fun msg ->
        Deque.push_back t.inbox msg;
        `Queued);
    has_work = (fun () -> not (Deque.is_empty t.inbox));
    take_next = (fun () -> Deque.pop_front t.inbox);
    process =
      (fun msg ->
        match msg with
        | Message.Data d -> handle_data t d
        | Message.Token tok -> handle_nack t tok
        | Message.Join _ | Message.Commit _ -> []);
    fire_timer =
      (fun timer ->
        match timer with Gap_check gen -> fire_gap_check t gen | _ -> []);
    start = (fun () -> []);
  }
