open Aring_wire
open Aring_ring
module Deque = Aring_util.Deque

type Participant.timer += Paxos_gap_check of int

let history_window = 200_000

let gap_check_ns = 2_000_000

let max_outstanding = 256

let max_nack_batch = 256

(* Marker ring id for all Ring Paxos packets. *)
let paxos_ring : Types.ring_id = { rep = -2; ring_seq = -2 }

(* d_round encodes the message role. *)
let role_proposal = 0
let role_phase2a = 1
let role_decision = 2

type t = {
  me : Types.pid;
  n : int;
  coordinator : Types.pid;
  quorum : int;  (* acceptors are pids coordinator..coordinator+quorum-1 *)
  inbox : Message.t Deque.t;
  (* Learner/acceptor state. *)
  values : (int, Message.data) Hashtbl.t;  (* instance -> phase 2a value *)
  mutable accepted_high : int;  (* contiguous 2a prefix *)
  mutable decided_high : int;  (* highest decided instance known *)
  mutable delivered : int;  (* delivery cursor *)
  mutable gap_timer_armed : bool;
  mutable gap_gen : int;
  (* Coordinator state. *)
  mutable next_instance : int;
  pending : Message.data Deque.t;  (* proposals waiting for the window *)
  (* Last acceptor state. *)
  mutable decision_sent : int;
  (* Stats. *)
  mutable delivered_count : int;
}

let create ~me ~n ?(coordinator = 0) () =
  {
    me;
    n;
    coordinator;
    quorum = (n / 2) + 1;
    inbox = Deque.create ();
    values = Hashtbl.create 1024;
    accepted_high = 0;
    decided_high = 0;
    delivered = 0;
    gap_timer_armed = false;
    gap_gen = 0;
    next_instance = 1;
    pending = Deque.create ();
    decision_sent = 0;
    delivered_count = 0;
  }

let delivered_count t = t.delivered_count
let decided_count t = t.decided_high

let is_coordinator t = t.me = t.coordinator

(* Acceptors occupy ring positions 0..quorum-1 starting at the
   coordinator; position of pid p is (p - coordinator) mod n. *)
let acceptor_position t pid = (pid - t.coordinator + t.n) mod t.n

let is_acceptor t = acceptor_position t t.me < t.quorum

let is_last_acceptor t = acceptor_position t t.me = t.quorum - 1

let next_acceptor t = (t.me + 1) mod t.n

let data ?(payload = Bytes.empty) t ~role ~instance ~origin : Message.data =
  ignore t;
  {
    d_ring = paxos_ring;
    seq = instance;
    pid = origin;
    d_round = role;
    post_token = false;
    service = Types.Agreed;
    payload;
  }

let advance_accepted t =
  while Hashtbl.mem t.values (t.accepted_high + 1) do
    t.accepted_high <- t.accepted_high + 1
  done

let deliver_ready t =
  let rec loop acc =
    let next = t.delivered + 1 in
    if next > t.decided_high then List.rev acc
    else
      match Hashtbl.find_opt t.values next with
      | None -> List.rev acc
      | Some d ->
          t.delivered <- next;
          t.delivered_count <- t.delivered_count + 1;
          (* Retain a bounded history (for the coordinator's NACK service). *)
          if next > history_window then
            Hashtbl.remove t.values (next - history_window);
          loop (Participant.Deliver d :: acc)
  in
  loop []

let arm_gap_timer t =
  if t.gap_timer_armed then []
  else begin
    t.gap_timer_armed <- true;
    t.gap_gen <- t.gap_gen + 1;
    [ Participant.Arm_timer (Paxos_gap_check t.gap_gen, gap_check_ns) ]
  end

(* The 2b acknowledgement circulating the acceptor ring: [aru] is the
   minimum contiguously-accepted instance across the hops so far. *)
let chain_token t ~aru : Message.token =
  ignore t;
  {
    t_ring = paxos_ring;
    token_id = 0;
    t_round = 0;
    t_seq = 0;
    aru;
    aru_id = None;
    fcc = 0;
    rtr = [];
  }

let decision_actions t m =
  if m > t.decision_sent then begin
    t.decision_sent <- m;
    t.decided_high <- max t.decided_high m;
    Participant.Multicast
      (Message.Data (data t ~role:role_decision ~instance:m ~origin:t.me))
    :: deliver_ready t
  end
  else []

(* Coordinator: open consensus instances for queued proposals while the
   outstanding window allows. *)
let open_instances t =
  let actions = ref [] in
  while
    (not (Deque.is_empty t.pending))
    && t.next_instance - 1 - t.decided_high < max_outstanding
  do
    match Deque.pop_front t.pending with
    | None -> ()
    | Some proposal ->
        let instance = t.next_instance in
        t.next_instance <- t.next_instance + 1;
        let value = { proposal with seq = instance; d_round = role_phase2a } in
        Hashtbl.replace t.values instance value;
        advance_accepted t;
        actions := Participant.Multicast (Message.Data value) :: !actions;
        (* Start the 2b acknowledgement chain for the new acceptance. *)
        if t.quorum = 1 then actions := List.rev_append (decision_actions t t.accepted_high) !actions
        else
          actions :=
            Participant.Unicast
              (next_acceptor t, Message.Token (chain_token t ~aru:t.accepted_high))
            :: !actions
  done;
  List.rev !actions

let handle_proposal t (d : Message.data) =
  if is_coordinator t then begin
    Deque.push_back t.pending d;
    open_instances t
  end
  else [ Participant.Unicast (t.coordinator, Message.Data d) ]

let handle_phase2a t (d : Message.data) =
  if Hashtbl.mem t.values d.seq || d.seq <= t.delivered then []
  else begin
    Hashtbl.replace t.values d.seq d;
    advance_accepted t;
    let delivered = deliver_ready t in
    let nack =
      if t.delivered < t.decided_high then arm_gap_timer t else []
    in
    delivered @ nack
  end

let handle_decision t (d : Message.data) =
  if d.seq <= t.decided_high then []
  else begin
    t.decided_high <- d.seq;
    let delivered = deliver_ready t in
    let nack = if t.delivered < t.decided_high then arm_gap_timer t else [] in
    let more = if is_coordinator t then open_instances t else [] in
    delivered @ nack @ more
  end

(* 2b chain hop: fold in our own contiguous acceptance and either forward
   or, at the last acceptor, decide. *)
let handle_chain t (tok : Message.token) =
  if not (is_acceptor t) then []
  else begin
    let m = min tok.aru t.accepted_high in
    if is_last_acceptor t then decision_actions t m
    else [ Participant.Unicast (next_acceptor t, Message.Token (chain_token t ~aru:m)) ]
  end

(* NACK service at the coordinator: resend requested values, then a
   decision refresh so the requester can catch up. *)
let handle_nack t (tok : Message.token) requester =
  if not (is_coordinator t) then []
  else begin
    let resends =
      List.filter_map
        (fun instance ->
          match Hashtbl.find_opt t.values instance with
          | Some d -> Some (Participant.Unicast (requester, Message.Data d))
          | None -> None)
        tok.rtr
    in
    resends
    @ [
        Participant.Unicast
          (requester,
           Message.Data (data t ~role:role_decision ~instance:t.decided_high ~origin:t.me));
      ]
  end

let fire_gap_check t gen =
  if gen <> t.gap_gen then []
  else begin
    t.gap_timer_armed <- false;
    if t.delivered >= t.decided_high then []
    else begin
      let rec missing inst budget acc =
        if inst > t.decided_high || budget = 0 then List.rev acc
        else if Hashtbl.mem t.values inst then missing (inst + 1) budget acc
        else missing (inst + 1) (budget - 1) (inst :: acc)
      in
      let gaps = missing (t.delivered + 1) max_nack_batch [] in
      let nack : Message.token =
        {
          t_ring = paxos_ring;
          token_id = 0;
          t_round = 0;
          t_seq = 0;
          aru = t.decided_high;
          aru_id = Some t.me;
          fcc = 0;
          rtr = gaps;
        }
      in
      Participant.Unicast (t.coordinator, Message.Token nack) :: arm_gap_timer t
    end
  end

let submit t _service payload =
  Deque.push_back t.inbox
    (Message.Data (data t ~payload ~role:role_proposal ~instance:0 ~origin:t.me))

let participant t : Participant.t =
  {
    pid = t.me;
    submit = (fun service payload -> submit t service payload);
    receive =
      (fun msg ->
        Deque.push_back t.inbox msg;
        `Queued);
    has_work = (fun () -> not (Deque.is_empty t.inbox));
    take_next = (fun () -> Deque.pop_front t.inbox);
    process =
      (fun msg ->
        match msg with
        | Message.Data d ->
            if d.d_round = role_proposal then handle_proposal t d
            else if d.d_round = role_phase2a then handle_phase2a t d
            else handle_decision t d
        | Message.Token tok -> (
            match tok.aru_id with
            | None -> handle_chain t tok
            | Some requester -> handle_nack t tok requester)
        | Message.Join _ | Message.Commit _ -> []);
    fire_timer =
      (fun timer ->
        match timer with Paxos_gap_check gen -> fire_gap_check t gen | _ -> []);
    start = (fun () -> []);
  }
