(** Ring Paxos baseline (Marandi et al., DSN 2010), simplified.

    The paper's related-work section measures (U-)Ring Paxos on the same
    clusters: ~750 Mbps at 1 Gbps with 1350-byte messages (batched), with
    a latency profile similar to the original Ring protocol's Safe
    delivery, and ~1.5 Gbps on 10 Gbps networks. This module implements
    the normal-case protocol behind the {!Aring_ring.Participant}
    interface so the same harness can measure it:

    - every process forwards its proposals to the {b coordinator};
    - the coordinator starts one consensus instance per message: it
      assigns the instance id and multicasts Phase 2a (the value) to all;
    - the {b acceptors} (a majority quorum arranged in a ring starting at
      the coordinator) pass a Phase 2b acknowledgement along the ring —
      each hop vouches for every instance it has accepted contiguously;
    - when the 2b acknowledgement completes the quorum, the last acceptor
      multicasts the {b decision}; learners (everyone) deliver instances
      in id order once both the value and the decision have arrived.

    Gap recovery is NACK-based against the coordinator, which retains a
    bounded history ({!history_window}).

    Wire mapping (reusing the base formats; see DESIGN.md): a proposal is
    a [Data] with [d_round = 0]; Phase 2a is [Data] with [d_round = 1] and
    [seq] = instance; a decision is an empty-payload [Data] with
    [d_round = 2]; the 2b ring acknowledgement and NACKs are [Token]s
    ([aru] = highest contiguously accepted instance; [rtr] = missing
    instances, [aru_id] = requester).

    Matching the scope of the paper's comparison, this implements the
    failure-free fast path only (no coordinator re-election): it is a
    performance baseline, not a fault-tolerance substrate — the paper's
    point is precisely that Paxos-style systems need extra machinery for
    the semantics EVS gives natively. *)

open Aring_wire
open Aring_ring

type Participant.timer += Paxos_gap_check of int

val history_window : int

type t

val create : me:Types.pid -> n:int -> ?coordinator:Types.pid -> unit -> t
(** [create ~me ~n ()] is process [me] of [n]; the coordinator defaults to
    process 0 and the acceptor quorum to the first [n/2 + 1] processes. *)

val participant : t -> Participant.t

val delivered_count : t -> int

val decided_count : t -> int
(** Instances decided at the coordinator. *)
