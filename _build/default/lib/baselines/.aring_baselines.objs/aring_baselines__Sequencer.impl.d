lib/baselines/sequencer.ml: Aring_ring Aring_util Aring_wire Hashtbl List Message Participant Types
