lib/baselines/ring_paxos.ml: Aring_ring Aring_util Aring_wire Bytes Hashtbl List Message Participant Types
