lib/baselines/sequencer.mli: Aring_ring Aring_wire Participant Types
