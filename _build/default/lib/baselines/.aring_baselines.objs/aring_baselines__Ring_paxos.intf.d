lib/baselines/ring_paxos.mli: Aring_ring Aring_wire Participant Types
