(** Fixed-sequencer total-order multicast baseline (JGroups-style).

    The related-work comparison in Section V measures a sequencer-based
    total ordering protocol (JGroups) on the same clusters. This module
    implements the classic fixed-sequencer scheme behind the same
    {!Aring_ring.Participant} interface the ring protocols use, so the
    experiment harness can run it unchanged:

    - a sender unicasts its message to the sequencer;
    - the sequencer assigns the next sequence number and multicasts the
      message to everyone;
    - receivers deliver in sequence order, detect gaps, and NACK the
      sequencer, which re-sends from its history buffer.

    Wire mapping (reusing the base formats): submissions and ordered
    messages are [Data] messages (a submission has [seq = 0]); a NACK is a
    [Token] whose [rtr] lists the missing sequence numbers and whose
    [aru_id] identifies the requester.

    Compared to the ring protocols, the sequencer provides no Safe
    (stability) service and no flow control — matching the weaker
    guarantees the paper points out for sequencer systems. The history
    buffer retains the most recent {!history_window} messages. *)

open Aring_wire
open Aring_ring

type Participant.timer += Gap_check of int

val history_window : int

type t

val create : me:Types.pid -> n:int -> ?sequencer:Types.pid -> unit -> t
(** [create ~me ~n ()] is participant [me] of an [n]-process group whose
    sequencer is process 0 (override with [?sequencer]). *)

val participant : t -> Participant.t

val delivered_count : t -> int
val nacks_sent : t -> int
