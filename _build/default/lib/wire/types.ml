type pid = int
type seqno = int
type round = int
type ring_id = { rep : pid; ring_seq : int }

let ring_id_equal a b = a.rep = b.rep && a.ring_seq = b.ring_seq

let ring_id_compare a b =
  match compare a.ring_seq b.ring_seq with 0 -> compare a.rep b.rep | c -> c

let pp_ring_id ppf r = Format.fprintf ppf "ring(%d.%d)" r.rep r.ring_seq

type service = Fifo | Causal | Agreed | Safe

let service_equal a b =
  match (a, b) with
  | Fifo, Fifo | Causal, Causal | Agreed, Agreed | Safe, Safe -> true
  | (Fifo | Causal | Agreed | Safe), _ -> false

let service_requires_stability = function
  | Safe -> true
  | Fifo | Causal | Agreed -> false

let service_to_string = function
  | Fifo -> "fifo"
  | Causal -> "causal"
  | Agreed -> "agreed"
  | Safe -> "safe"

let pp_service ppf s = Format.pp_print_string ppf (service_to_string s)
