(** Common protocol types shared by every message and every layer.

    Identifiers are plain integers: in the simulator they index nodes; in the
    UDP runtime they index the configured address list. Ring identifiers
    follow Totem: the pair of the representative's process id and a
    monotonically increasing ring sequence number, so every installed
    configuration is globally unique. *)

type pid = int
(** Process (protocol participant) identifier. *)

type seqno = int
(** Message sequence number — the position in the total order within one
    ring configuration. Sequence numbers start at 1; 0 means "none". *)

type round = int
(** Token round number: how many times the token has visited a participant
    since the ring was installed. *)

type ring_id = { rep : pid; ring_seq : int }
(** Unique identifier of an installed ring configuration. [rep] is the
    representative (smallest pid) of the membership; [ring_seq] increases
    with every installation attempt so re-formations are distinguishable. *)

val ring_id_equal : ring_id -> ring_id -> bool
val ring_id_compare : ring_id -> ring_id -> int
val pp_ring_id : Format.formatter -> ring_id -> unit

type service =
  | Fifo  (** FIFO-by-sender delivery; delivered in total order here. *)
  | Causal  (** Causal delivery; subsumed by Agreed in a ring protocol. *)
  | Agreed  (** Same total order at all members; causality respected. *)
  | Safe
      (** Delivered only once every member of the configuration is known to
          have received the message (stability). *)

val service_equal : service -> service -> bool

val service_requires_stability : service -> bool
(** [true] only for {!Safe}: delivery must wait for the aru line. *)

val pp_service : Format.formatter -> service -> unit
val service_to_string : service -> string
