lib/wire/codec.mli:
