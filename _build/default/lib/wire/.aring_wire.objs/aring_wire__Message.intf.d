lib/wire/message.mli: Format Types
