lib/wire/codec.ml: Buffer Bytes Char Int32 Int64 List Printf
