lib/wire/types.ml: Format
