lib/wire/message.ml: Bytes Codec Format List Printf Types
