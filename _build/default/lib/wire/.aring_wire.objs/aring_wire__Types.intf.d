lib/wire/types.mli: Format
