lib/harness/scenario.mli: Aring_ring Aring_sim Aring_util Aring_wire Format Params Participant Profile Types
