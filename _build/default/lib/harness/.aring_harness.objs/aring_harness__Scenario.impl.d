lib/harness/scenario.ml: Aring_ring Aring_sim Aring_util Aring_wire Array Bytes Engine Format Int64 Message Netsim Node Params Profile Types
