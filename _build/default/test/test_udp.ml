(* Real-socket integration test: a 3-member ring over UDP on loopback,
   each member driven by its own thread running the select loop. Verifies
   that the full stack (wire codec, engine, membership wrapper, priority
   policy) works outside the simulator. *)

open Aring_wire
open Aring_ring
open Aring_transport

let check = Alcotest.check

let base_port = 21740

let peers n =
  List.init n (fun pid ->
      {
        Udp_runtime.pid;
        host = "127.0.0.1";
        data_port = base_port + (2 * pid);
        token_port = base_port + (2 * pid) + 1;
      })

let test_three_node_udp_ring () =
  let n = 3 in
  let ring = Array.init n (fun i -> i) in
  let mutex = Mutex.create () in
  let delivered = Array.init n (fun _ -> ref []) in
  let members =
    Array.init n (fun me -> Member.create ~params:Params.default ~me ~initial_ring:ring ())
  in
  let runtimes =
    Array.init n (fun me ->
        Udp_runtime.create ~me ~peers:(peers n)
          ~participant:(Member.participant members.(me))
          ~on_deliver:(fun (d : Message.data) ->
            Mutex.lock mutex;
            delivered.(me) := (d.pid, d.seq, Bytes.to_string d.payload) :: !(delivered.(me));
            Mutex.unlock mutex)
          ())
  in
  let threads =
    Array.map
      (fun rt -> Thread.create (fun () -> Udp_runtime.run rt ~duration_s:2.0) ())
      runtimes
  in
  (* Give the ring a moment to start, then submit from every member. *)
  Thread.delay 0.3;
  for k = 1 to 30 do
    Member.submit members.(k mod n) Types.Agreed
      (Bytes.of_string (Printf.sprintf "udp-%d" k));
    Thread.delay 0.01
  done;
  Array.iter Thread.join threads;
  Array.iter Udp_runtime.close runtimes;
  let streams =
    Array.to_list (Array.map (fun r -> List.rev !r) delivered)
  in
  (match streams with
  | first :: rest ->
      check Alcotest.int "all messages delivered" 30 (List.length first);
      List.iteri
        (fun i s ->
          check Alcotest.bool
            (Printf.sprintf "node %d identical stream" (i + 1))
            true (s = first))
        rest
  | [] -> assert false);
  Array.iter
    (fun rt ->
      check Alcotest.int "no decode errors" 0 (Udp_runtime.decode_errors rt))
    runtimes

let test_daemon_stack_over_udp () =
  (* The full production stack — daemon (groups) on membership on the
     ordering engine — over real UDP sockets. *)
  let n = 2 in
  let base = base_port + 100 in
  let peers =
    List.init n (fun pid ->
        {
          Udp_runtime.pid;
          host = "127.0.0.1";
          data_port = base + (2 * pid);
          token_port = base + (2 * pid) + 1;
        })
  in
  let ring = Array.init n (fun i -> i) in
  let members =
    Array.init n (fun me -> Aring_ring.Member.create ~params:Params.default ~me ~initial_ring:ring ())
  in
  let daemons =
    Array.map (fun m -> Aring_daemon.Daemon.create ~member:m ()) members
  in
  let mutex = Mutex.create () in
  let received = ref [] in
  let cb tag =
    {
      Aring_daemon.Daemon.on_message =
        (fun ~sender ~groups:_ _service payload ->
          Mutex.lock mutex;
          received := (tag, sender, Bytes.to_string payload) :: !received;
          Mutex.unlock mutex);
      on_group_view = (fun ~group:_ ~members:_ -> ());
    }
  in
  let runtimes =
    Array.init n (fun me ->
        Udp_runtime.create ~me ~peers
          ~participant:(Aring_daemon.Daemon.participant daemons.(me))
          ())
  in
  let threads =
    Array.map
      (fun rt -> Thread.create (fun () -> Udp_runtime.run rt ~duration_s:1.5) ())
      runtimes
  in
  Thread.delay 0.2;
  let s0 = Aring_daemon.Daemon.connect daemons.(0) ~name:"a" (cb "a") in
  let s1 = Aring_daemon.Daemon.connect daemons.(1) ~name:"b" (cb "b") in
  Aring_daemon.Daemon.join daemons.(0) s0 "room";
  Aring_daemon.Daemon.join daemons.(1) s1 "room";
  Thread.delay 0.3;
  Aring_daemon.Daemon.multicast daemons.(0) s0 ~groups:[ "room" ]
    (Bytes.of_string "over the wire");
  Array.iter Thread.join threads;
  Array.iter Udp_runtime.close runtimes;
  let got tag =
    List.exists (fun (t, _, p) -> t = tag && p = "over the wire") !received
  in
  check Alcotest.bool "a received own message" true (got "a");
  check Alcotest.bool "b received across daemons" true (got "b");
  check Alcotest.string "consistent group view"
    (String.concat "," (Aring_daemon.Daemon.group_members daemons.(0) "room"))
    (String.concat "," (Aring_daemon.Daemon.group_members daemons.(1) "room"))

let suite =
  [
    ("3-node UDP ring", `Slow, test_three_node_udp_ring);
    ("daemon stack over UDP", `Slow, test_daemon_stack_over_udp);
  ]
