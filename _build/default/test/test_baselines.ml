(* Sequencer-baseline tests: total order, gap recovery via NACK, and a
   comparative scenario run against the ring protocols. *)

open Aring_wire
open Aring_sim
open Aring_baselines

let check = Alcotest.check

let ms n = n * 1_000_000

type scluster = {
  sim : Netsim.t;
  seqs : Sequencer.t array;
  delivered : (Types.pid * string) list ref array;  (* newest first *)
}

let make_scluster ?(n = 4) ?(net = Profile.gigabit) ?(seed = 5L) () =
  let seqs = Array.init n (fun me -> Sequencer.create ~me ~n ()) in
  let sim =
    Netsim.create ~net
      ~tiers:(Array.make n Profile.library)
      ~participants:(Array.map Sequencer.participant seqs)
      ~seed ()
  in
  let delivered = Array.init n (fun _ -> ref []) in
  Netsim.on_deliver sim (fun ~at ~now:_ (d : Message.data) ->
      delivered.(at) := (d.pid, Bytes.to_string d.payload) :: !(delivered.(at)));
  { sim; seqs; delivered }

let stream c i = List.rev !(c.delivered.(i))

let test_sequencer_total_order () =
  let c = make_scluster () in
  for k = 1 to 40 do
    Netsim.submit_at c.sim ~at:(k * 50_000) ~node:(k mod 4) Types.Agreed
      (Bytes.of_string (Printf.sprintf "m%d" k))
  done;
  Netsim.run_until c.sim (ms 50);
  let s0 = stream c 0 in
  check Alcotest.int "all delivered at node 0" 40 (List.length s0);
  for i = 1 to 3 do
    check Alcotest.bool
      (Printf.sprintf "node %d same order" i)
      true
      (stream c i = s0)
  done

let test_sequencer_loss_recovery () =
  let net = Profile.with_loss Profile.gigabit 0.05 in
  let c = make_scluster ~net () in
  for k = 1 to 60 do
    Netsim.submit_at c.sim ~at:(k * 50_000) ~node:(k mod 4) Types.Agreed
      (Bytes.of_string (Printf.sprintf "m%d" k))
  done;
  Netsim.run_until c.sim (ms 300);
  (* Submissions themselves can be lost sender->sequencer (the baseline has
     no end-to-end sender retry, like UDP JGroups without flow control), but
     every ORDERED message must reach every node via NACK recovery: all
     streams equal the sequencer's delivered stream. *)
  let s0 = stream c 0 in
  check Alcotest.bool "sequencer ordered most messages" true
    (List.length s0 >= 40);
  for i = 1 to 3 do
    check Alcotest.bool
      (Printf.sprintf "node %d converged to sequencer stream" i)
      true
      (stream c i = s0)
  done;
  let total_nacks =
    Array.fold_left (fun acc s -> acc + Sequencer.nacks_sent s) 0 c.seqs
  in
  check Alcotest.bool "NACKs were used" true (total_nacks > 0)

let test_sequencer_scenario_runs () =
  let open Aring_harness in
  let spec =
    {
      Scenario.default_spec with
      label = "sequencer";
      tier = Profile.daemon;
      offered_mbps = 300.0;
      warmup_ns = ms 50;
      measure_ns = ms 150;
    }
  in
  let participants =
    Array.init spec.n_nodes (fun me ->
        Sequencer.participant (Sequencer.create ~me ~n:spec.n_nodes ()))
  in
  let r = Scenario.run_custom spec ~participants in
  check Alcotest.bool "sequencer sustains 300 Mbps" true
    (r.delivered_mbps > 290.0);
  check Alcotest.bool "latency sane" true
    (Aring_util.Stats.mean r.latency_us > 0.0
    && Aring_util.Stats.mean r.latency_us < 10_000.0)


(* -------------------------------------------------------------------- *)
(* Ring Paxos                                                            *)

type pcluster = {
  psim : Netsim.t;
  paxos : Ring_paxos.t array;
  pdelivered : (Types.pid * string) list ref array;
}

let make_pcluster ?(n = 5) ?(net = Profile.gigabit) ?(seed = 11L) () =
  let paxos = Array.init n (fun me -> Ring_paxos.create ~me ~n ()) in
  let psim =
    Netsim.create ~net
      ~tiers:(Array.make n Profile.library)
      ~participants:(Array.map Ring_paxos.participant paxos)
      ~seed ()
  in
  let pdelivered = Array.init n (fun _ -> ref []) in
  Netsim.on_deliver psim (fun ~at ~now:_ (d : Message.data) ->
      pdelivered.(at) := (d.pid, Bytes.to_string d.payload) :: !(pdelivered.(at)));
  { psim; paxos; pdelivered }

let pstream c i = List.rev !(c.pdelivered.(i))

let test_paxos_total_order () =
  let c = make_pcluster () in
  for k = 1 to 50 do
    Netsim.submit_at c.psim ~at:(k * 40_000) ~node:(k mod 5) Types.Agreed
      (Bytes.of_string (Printf.sprintf "p%d" k))
  done;
  Netsim.run_until c.psim (ms 100);
  let s0 = pstream c 0 in
  check Alcotest.int "all decided and delivered" 50 (List.length s0);
  for i = 1 to 4 do
    check Alcotest.bool (Printf.sprintf "learner %d same order" i) true
      (pstream c i = s0)
  done;
  check Alcotest.bool "coordinator decided all" true
    (Ring_paxos.decided_count c.paxos.(0) >= 50)

let test_paxos_loss_recovery () =
  let net = Profile.with_loss Profile.gigabit 0.03 in
  let c = make_pcluster ~net () in
  for k = 1 to 60 do
    Netsim.submit_at c.psim ~at:(k * 40_000) ~node:(k mod 5) Types.Agreed
      (Bytes.of_string (Printf.sprintf "p%d" k))
  done;
  Netsim.run_until c.psim (ms 500);
  (* Proposals can be lost en route to the coordinator (no sender retry,
     as in the sequencer baseline), but every DECIDED instance must reach
     every learner identically. *)
  let s0 = pstream c 0 in
  check Alcotest.bool "most instances decided" true (List.length s0 >= 40);
  for i = 1 to 4 do
    check Alcotest.bool
      (Printf.sprintf "learner %d converged" i)
      true
      (pstream c i = s0)
  done

let test_paxos_scenario_runs () =
  let open Aring_harness in
  let spec =
    {
      Scenario.default_spec with
      label = "ring-paxos";
      tier = Profile.daemon;
      offered_mbps = 300.0;
      warmup_ns = ms 50;
      measure_ns = ms 150;
    }
  in
  let participants =
    Array.init spec.n_nodes (fun me ->
        Ring_paxos.participant (Ring_paxos.create ~me ~n:spec.n_nodes ()))
  in
  let r = Scenario.run_custom spec ~participants in
  check Alcotest.bool "ring paxos sustains 300 Mbps" true
    (r.delivered_mbps > 290.0);
  check Alcotest.bool "latency sane" true
    (Aring_util.Stats.mean r.latency_us > 0.0
    && Aring_util.Stats.mean r.latency_us < 10_000.0)

let suite =
  [
    ("sequencer total order", `Quick, test_sequencer_total_order);
    ("sequencer loss recovery", `Quick, test_sequencer_loss_recovery);
    ("sequencer scenario", `Slow, test_sequencer_scenario_runs);
    ("ring paxos total order", `Quick, test_paxos_total_order);
    ("ring paxos loss recovery", `Quick, test_paxos_loss_recovery);
    ("ring paxos scenario", `Slow, test_paxos_scenario_runs);
  ]
