(* Instant-delivery in-memory cluster used by protocol unit and property
   tests. Packets arrive in send order with zero latency; optional Bernoulli
   loss can be applied to multicast data (never to the token, so tests do not
   depend on timers — token loss is exercised against the real simulator).

   The toy network never quiesces (the token circulates forever), so tests
   run a fixed number of steps and then assert properties. *)

open Aring_wire
open Aring_ring
module Prng = Aring_util.Prng

type delivery = {
  at : Types.pid;  (* receiving participant *)
  from : Types.pid;  (* initiator *)
  seq : Types.seqno;
  service : Types.service;
  payload : bytes;
}

type t = {
  nodes : Node.t array;
  prng : Prng.t;
  data_loss : float;
  drop : src:Types.pid -> dst:Types.pid -> Message.data -> bool;
  mutable deliveries : delivery list array;  (* newest first, per node *)
  mutable submitted : int;
}

let ring_id : Types.ring_id = { rep = 0; ring_seq = 1 }

let apply t at = function
  | Participant.Unicast (dst, msg) -> ignore (Node.receive t.nodes.(dst) msg)
  | Participant.Multicast msg ->
      Array.iteri
        (fun j node ->
          if j <> at then
            let lost =
              match msg with
              | Message.Data d ->
                  t.drop ~src:at ~dst:j d
                  || (t.data_loss > 0.0 && Prng.bernoulli t.prng t.data_loss)
              | Message.Token _ | Message.Join _ | Message.Commit _ -> false
            in
            if not lost then ignore (Node.receive node msg))
        t.nodes
  | Participant.Deliver d ->
      t.deliveries.(at) <-
        {
          at;
          from = d.pid;
          seq = d.seq;
          service = d.service;
          payload = d.payload;
        }
        :: t.deliveries.(at)
  | Participant.Arm_timer _ | Participant.Deliver_config _ -> ()
  | Participant.Token_loss_detected ->
      failwith "toy_net: unexpected token loss (token is never dropped)"

let create ?(data_loss = 0.0) ?(seed = 42L)
    ?(drop = fun ~src:_ ~dst:_ _ -> false) ~params n =
  let ring = Array.init n (fun i -> i) in
  let nodes =
    Array.init n (fun me -> Node.create ~params ~ring_id ~ring ~me ())
  in
  let t =
    {
      nodes;
      prng = Prng.create ~seed;
      data_loss;
      drop;
      deliveries = Array.make n [];
      submitted = 0;
    }
  in
  Array.iteri (fun i node -> List.iter (apply t i) (Node.start node)) nodes;
  t

let submit t pid service payload =
  Node.submit t.nodes.(pid) service payload;
  t.submitted <- t.submitted + 1

(* Process one queued message at one node, scanning round-robin from
   [start]. Returns false when every queue is empty. *)
let step t start =
  let n = Array.length t.nodes in
  let rec scan i =
    if i >= n then false
    else
      let at = (start + i) mod n in
      match Node.take_next t.nodes.(at) with
      | None -> scan (i + 1)
      | Some msg ->
          List.iter (apply t at) (Node.process t.nodes.(at) msg);
          true
  in
  scan 0

let run t ~steps =
  let continue = ref true in
  let i = ref 0 in
  while !continue && !i < steps do
    continue := step t !i;
    incr i
  done

let deliveries t pid = List.rev t.deliveries.(pid)

let delivered_seqs t pid = List.map (fun d -> d.seq) (deliveries t pid)

let node t pid = t.nodes.(pid)

let engine t pid = Node.engine t.nodes.(pid)

let size t = Array.length t.nodes
