test/test_wire.ml: Alcotest Aring_wire Bytes Codec Fmt List Message QCheck QCheck_alcotest Types
