test/toy_net.ml: Aring_ring Aring_util Aring_wire Array List Message Node Participant Types
