test/test_sim.ml: Alcotest Aring_harness Aring_ring Aring_sim Aring_util Aring_wire Array Bytes Engine Hashtbl List Message Netsim Node Params Printf Profile Scenario Types
