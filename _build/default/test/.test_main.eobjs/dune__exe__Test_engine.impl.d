test/test_engine.ml: Alcotest Aring_ring Aring_wire Bytes Engine Int64 List Message Option Params Printf Priority QCheck QCheck_alcotest Toy_net Types
