test/test_params.ml: Alcotest Aring_ring Aring_wire Engine Params
