test/test_util.ml: Alcotest Aring_util Gen List Printf QCheck QCheck_alcotest String
