test/test_main.ml: Alcotest Aring_util Test_baselines Test_daemon Test_engine Test_member Test_params Test_sim Test_udp Test_util Test_wire
