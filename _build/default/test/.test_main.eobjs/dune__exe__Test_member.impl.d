test/test_member.ml: Alcotest Aring_ring Aring_sim Aring_wire Array Bytes Int64 List Member Message Netsim Params Participant Printf Profile QCheck QCheck_alcotest String Types
