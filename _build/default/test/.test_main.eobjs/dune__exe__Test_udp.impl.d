test/test_udp.ml: Alcotest Aring_daemon Aring_ring Aring_transport Aring_wire Array Bytes List Member Message Mutex Params Printf String Thread Types Udp_runtime
