test/test_baselines.ml: Alcotest Aring_baselines Aring_harness Aring_sim Aring_util Aring_wire Array Bytes List Message Netsim Printf Profile Ring_paxos Scenario Sequencer Types
