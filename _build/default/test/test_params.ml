(* Parameter validation and constructor tests. *)

open Aring_ring

let check = Alcotest.check

let ok p =
  match Params.validate p with
  | Ok () -> true
  | Error _ -> false

let error_msg p =
  match Params.validate p with Ok () -> "<ok>" | Error m -> m

let test_defaults_valid () =
  check Alcotest.bool "default valid" true (ok Params.default);
  check Alcotest.bool "original valid" true (ok Params.original);
  check Alcotest.bool "original is original" true (Params.is_original Params.original);
  check Alcotest.bool "default is not original" false (Params.is_original Params.default)

let test_invalid_windows () =
  check Alcotest.string "pw positive" "personal_window must be positive"
    (error_msg { Params.default with personal_window = 0 });
  check Alcotest.string "gw >= pw" "global_window must be at least personal_window"
    (error_msg { Params.default with personal_window = 50; global_window = 10 });
  check Alcotest.string "aw non-negative" "accelerated_window must be non-negative"
    (error_msg { Params.default with accelerated_window = -1 });
  check Alcotest.string "aw <= pw"
    "accelerated_window must not exceed personal_window"
    (error_msg { Params.default with personal_window = 10; accelerated_window = 20 });
  check Alcotest.string "gap >= gw" "max_seq_gap must be at least global_window"
    (error_msg { Params.default with max_seq_gap = 1 });
  check Alcotest.string "timeouts ordered"
    "token_loss_ns must exceed token_retransmit_ns"
    (error_msg { Params.default with token_loss_ns = 1 })

let test_accelerated_overrides () =
  let p =
    Params.accelerated ~personal_window:99 ~global_window:500
      ~accelerated_window:7 ~priority_method:Params.Conservative ()
  in
  check Alcotest.int "pw" 99 p.personal_window;
  check Alcotest.int "gw" 500 p.global_window;
  check Alcotest.int "aw" 7 p.accelerated_window;
  check Alcotest.bool "valid" true (ok p);
  check Alcotest.bool "conservative" true (p.priority_method = Params.Conservative)

let test_engine_rejects_invalid () =
  let bad = { Params.default with personal_window = 0 } in
  let rid : Aring_wire.Types.ring_id = { rep = 0; ring_seq = 1 } in
  Alcotest.check_raises "create rejects invalid params"
    (Invalid_argument "Engine.create: personal_window must be positive")
    (fun () -> ignore (Engine.create ~params:bad ~ring_id:rid ~ring:[| 0 |] ~me:0));
  Alcotest.check_raises "create rejects absent pid"
    (Invalid_argument "Engine.create: me not in ring") (fun () ->
      ignore
        (Engine.create ~params:Params.default ~ring_id:rid ~ring:[| 0; 1 |] ~me:7))

let suite =
  [
    ("defaults valid", `Quick, test_defaults_valid);
    ("invalid windows rejected", `Quick, test_invalid_windows);
    ("accelerated overrides", `Quick, test_accelerated_overrides);
    ("engine rejects invalid params", `Quick, test_engine_rejects_invalid);
  ]
