(* Partitions, merges, and Extended Virtual Synchrony.

   Six nodes split 3|3; each side forms its own configuration and keeps
   ordering messages independently (EVS allows progress in multiple
   partitions — a key advantage the paper claims over sequencer and
   Paxos-style systems). When the network heals, the presence probes let
   the two rings discover each other and merge back into one
   configuration, through which ordering resumes cluster-wide.

   Run with: dune exec examples/partition_demo.exe *)

open Aring_wire
open Aring_ring
open Aring_sim

let n = 6

let params =
  {
    Params.default with
    token_loss_ns = 50_000_000;
    consensus_timeout_ns = 100_000_000;
    merge_probe_ns = 80_000_000;
  }

let () =
  Aring_util.Log.setup ();
  let ring = Array.init n (fun i -> i) in
  let members =
    Array.init n (fun me -> Member.create ~params ~me ~initial_ring:ring ())
  in
  let sim =
    Netsim.create ~net:Profile.gigabit
      ~tiers:(Array.make n Profile.library)
      ~participants:(Array.map Member.participant members)
      ()
  in
  let received : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  Netsim.on_deliver sim (fun ~at ~now:_ (d : Message.data) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt received at) in
      Hashtbl.replace received at (Bytes.to_string d.payload :: cur));
  Netsim.on_view sim (fun ~at ~now v ->
      Printf.printf "[%7d us] node %d  %s\n" (now / 1000) at
        (Fmt.str "%a" Participant.pp_view v));
  let says node text at =
    Netsim.submit_at sim ~at ~node Types.Agreed (Bytes.of_string text)
  in
  let ms x = x * 1_000_000 in
  (* Phase 1: one ring, cluster-wide ordering. *)
  says 0 "hello from 0 (one ring)" (ms 5);
  says 5 "hello from 5 (one ring)" (ms 5);
  (* Phase 2: partition {0,1,2} | {3,4,5}. *)
  Netsim.call_at sim ~at:(ms 20) (fun () ->
      Printf.printf "[%7d us] === network partitions: {0,1,2} | {3,4,5} ===\n"
        (Netsim.now sim / 1000);
      Netsim.set_drop sim (fun ~src ~dst _ -> src / 3 <> dst / 3));
  says 1 "left side only" (ms 700);
  says 4 "right side only" (ms 700);
  (* Phase 3: heal; the rings discover each other via probes and merge. *)
  Netsim.call_at sim ~at:(ms 1200) (fun () ->
      Printf.printf "[%7d us] === network heals ===\n" (Netsim.now sim / 1000);
      Netsim.set_drop sim (fun ~src:_ ~dst:_ _ -> false));
  says 2 "back together (from left)" (ms 3200);
  says 3 "back together (from right)" (ms 3200);
  Netsim.run_until sim (ms 4000);
  Printf.printf "\nWho received what:\n";
  for i = 0 to n - 1 do
    let msgs = List.rev (Option.value ~default:[] (Hashtbl.find_opt received i)) in
    Printf.printf "  node %d: %s\n" i (String.concat " | " msgs)
  done;
  (* During the partition, sides saw only their own messages; after the
     merge everyone orders everything again. *)
  let got i text =
    List.mem text (Option.value ~default:[] (Hashtbl.find_opt received i))
  in
  let ok =
    got 0 "left side only"
    && (not (got 0 "right side only"))
    && got 5 "right side only"
    && (not (got 5 "left side only"))
    && List.for_all
         (fun i -> got i "back together (from left)" && got i "back together (from right)")
         [ 0; 1; 2; 3; 4; 5 ]
  in
  Printf.printf "\nEVS behaviour as expected: %b\n" ok;
  if not ok then exit 1
