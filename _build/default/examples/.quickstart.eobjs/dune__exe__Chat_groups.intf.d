examples/chat_groups.mli:
