examples/udp_ring.ml: Aring_ring Aring_transport Aring_util Aring_wire Array Bytes List Member Message Mutex Params Printf Thread Types Udp_runtime
