examples/kv_store.ml: Aring_ring Aring_sim Aring_util Aring_wire Array Bytes Hashtbl List Member Message Netsim Params Printf Profile String Types
