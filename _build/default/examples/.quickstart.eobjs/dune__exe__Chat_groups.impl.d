examples/chat_groups.ml: Aring_daemon Aring_ring Aring_sim Aring_util Array Bytes Daemon List Member Netsim Params Printf Profile String
