examples/quickstart.ml: Aring_ring Aring_sim Aring_util Aring_wire Array Bytes Fmt List Member Message Netsim Params Participant Printf Profile Types
