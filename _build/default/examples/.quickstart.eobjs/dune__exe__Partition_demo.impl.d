examples/partition_demo.ml: Aring_ring Aring_sim Aring_util Aring_wire Array Bytes Fmt Hashtbl List Member Message Netsim Option Params Participant Printf Profile String Types
