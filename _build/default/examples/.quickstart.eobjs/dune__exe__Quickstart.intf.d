examples/quickstart.mli:
