examples/udp_ring.mli:
