(* Real sockets, real time: a 3-member ring over UDP on loopback.

   Unlike the other examples (which run on the deterministic simulator),
   this one runs the full stack over actual UDP sockets — wire codec,
   token and data ports, select loop — with each member on its own thread,
   just as three separate daemon processes would run on three machines.

   Run with: dune exec examples/udp_ring.exe *)

open Aring_wire
open Aring_ring
open Aring_transport

let n = 3

let base_port = 22840

let () =
  Aring_util.Log.setup ();
  let peers =
    List.init n (fun pid ->
        {
          Udp_runtime.pid;
          host = "127.0.0.1";
          data_port = base_port + (2 * pid);
          token_port = base_port + (2 * pid) + 1;
        })
  in
  let ring = Array.init n (fun i -> i) in
  let members =
    Array.init n (fun me ->
        Member.create ~params:Params.default ~me ~initial_ring:ring ())
  in
  let mutex = Mutex.create () in
  let streams = Array.make n [] in
  let runtimes =
    Array.init n (fun me ->
        Udp_runtime.create ~me ~peers
          ~participant:(Member.participant members.(me))
          ~on_deliver:(fun (d : Message.data) ->
            Mutex.lock mutex;
            streams.(me) <- (d.pid, d.seq, Bytes.to_string d.payload) :: streams.(me);
            Mutex.unlock mutex)
          ())
  in
  let threads =
    Array.map
      (fun rt -> Thread.create (fun () -> Udp_runtime.run rt ~duration_s:1.5) ())
      runtimes
  in
  Thread.delay 0.2;
  Printf.printf "Ring is up on 127.0.0.1 ports %d-%d; sending...\n%!" base_port
    (base_port + (2 * n) - 1);
  for k = 1 to 12 do
    Member.submit members.(k mod n) Types.Agreed
      (Bytes.of_string (Printf.sprintf "packet %02d from member %d" k (k mod n)));
    Thread.delay 0.02
  done;
  Array.iter Thread.join threads;
  Array.iter Udp_runtime.close runtimes;
  Printf.printf "\nDeliveries at member 0 (over real UDP):\n";
  List.iter
    (fun (pid, seq, payload) -> Printf.printf "  #%-3d (from %d) %s\n" seq pid payload)
    (List.rev streams.(0));
  let strip l = List.rev l in
  let agree = Array.for_all (fun s -> strip s = strip streams.(0)) streams in
  Printf.printf "\nAll members delivered the same order: %b\n" agree;
  if not agree then exit 1
