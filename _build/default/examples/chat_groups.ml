(* Group chat on the Spread-like daemon layer.

   Exercises the client-daemon architecture the paper credits for Spread's
   adoption: named groups, open-group sends, multi-group multicast with a
   single consistent order across groups, and group membership
   notifications delivered at the same point of the message stream at
   every client.

   Run with: dune exec examples/chat_groups.exe *)

open Aring_ring
open Aring_sim
open Aring_daemon

let n_daemons = 3

let () =
  Aring_util.Log.setup ();
  let ring = Array.init n_daemons (fun i -> i) in
  let members =
    Array.init n_daemons (fun me ->
        Member.create ~params:Params.default ~me ~initial_ring:ring ())
  in
  let daemons = Array.map (fun m -> Daemon.create ~member:m ()) members in
  let sim =
    Netsim.create ~net:Profile.gigabit
      ~tiers:(Array.make n_daemons Profile.daemon)
      ~participants:(Array.map Daemon.participant daemons)
      ()
  in
  let transcript = ref [] in
  let client who =
    {
      Daemon.on_message =
        (fun ~sender ~groups _service payload ->
          transcript :=
            Printf.sprintf "%-8s got [%s] %s: %s" who
              (String.concat "," groups) sender (Bytes.to_string payload)
            :: !transcript);
      on_group_view =
        (fun ~group ~members ->
          transcript :=
            Printf.sprintf "%-8s sees %s = {%s}" who group
              (String.concat ", " members)
            :: !transcript);
    }
  in
  (* Three users on three different daemons. *)
  let alice = Daemon.connect daemons.(0) ~name:"alice" (client "alice") in
  let bob = Daemon.connect daemons.(1) ~name:"bob" (client "bob") in
  let carol = Daemon.connect daemons.(2) ~name:"carol" (client "carol") in
  let at = ref 0 in
  let step f =
    at := !at + 3_000_000;
    Netsim.call_at sim ~at:!at f
  in
  step (fun () -> Daemon.join daemons.(0) alice "ocaml");
  step (fun () -> Daemon.join daemons.(1) bob "ocaml");
  step (fun () -> Daemon.join daemons.(2) carol "distsys");
  step (fun () -> Daemon.join daemons.(1) bob "distsys");
  step (fun () ->
      Daemon.multicast daemons.(0) alice ~groups:[ "ocaml" ]
        (Bytes.of_string "anyone tried the new effects syntax?"));
  step (fun () ->
      (* Multi-group multicast: bob is in both groups but receives one copy,
         ordered identically with respect to both groups' traffic. *)
      Daemon.multicast daemons.(2) carol ~groups:[ "ocaml"; "distsys" ]
        (Bytes.of_string "cross-posting: ring protocols are neat"));
  step (fun () -> Daemon.leave daemons.(1) bob "ocaml");
  step (fun () ->
      Daemon.multicast daemons.(0) alice ~groups:[ "ocaml" ]
        (Bytes.of_string "bob left, it's just us now"));
  Netsim.run_until sim 100_000_000;
  Printf.printf "Chat transcript (as observed by the clients):\n";
  List.iter (fun line -> Printf.printf "  %s\n" line) (List.rev !transcript);
  (* Sanity: bob received the cross-post exactly once (multi-group dedup). *)
  let contains haystack needle =
    let hl = String.length haystack and nl = String.length needle in
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    nl = 0 || scan 0
  in
  let bob_crossposts =
    List.filter
      (fun l ->
        String.length l >= 3 && String.sub l 0 3 = "bob"
        && contains l "cross-posting")
      !transcript
  in
  Printf.printf "\nBob received the cross-post exactly once: %b\n"
    (List.length bob_crossposts = 1);
  Printf.printf "Daemon 0 stats: %d client deliveries, %d group notifications\n"
    (Daemon.stats daemons.(0)).client_deliveries
    (Daemon.stats daemons.(0)).group_notifications;
  if List.length bob_crossposts <> 1 then exit 1
