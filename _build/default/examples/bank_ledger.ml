(* Replicated bank ledger using Safe delivery and surviving a crash.

   Safe delivery (the paper's stability service) guarantees a message is
   delivered only once every participant has received it. For a ledger
   that must never acknowledge a transfer that could be lost with a
   minority, this is the right service: a delivered transfer is durable at
   every replica. This example crashes one replica mid-run and shows the
   survivors reform the ring (membership algorithm) and end with identical
   ledgers.

   Run with: dune exec examples/bank_ledger.exe *)

open Aring_wire
open Aring_ring
open Aring_sim

let n_banks = 4

let accounts = [| "alice"; "bob"; "carol" |]

type ledger = {
  member : Member.t;
  balances : (string, int) Hashtbl.t;
  mutable applied : int;
}

let apply ledger payload =
  match String.split_on_char ' ' (Bytes.to_string payload) with
  | [ src; dst; amount ] ->
      let amount = int_of_string amount in
      let get a = Option.value ~default:1000 (Hashtbl.find_opt ledger.balances a) in
      Hashtbl.replace ledger.balances src (get src - amount);
      Hashtbl.replace ledger.balances dst (get dst + amount);
      ledger.applied <- ledger.applied + 1
  | _ -> ()

let snapshot ledger =
  Array.to_list
    (Array.map
       (fun a ->
         (a, Option.value ~default:1000 (Hashtbl.find_opt ledger.balances a)))
       accounts)

let params =
  (* Production defaults, with a snappier token-loss timeout so the demo
     reforms quickly after the crash. *)
  {
    Params.default with
    token_loss_ns = 50_000_000;
    consensus_timeout_ns = 100_000_000;
  }

let () =
  Aring_util.Log.setup ();
  let ring = Array.init n_banks (fun i -> i) in
  let ledgers =
    Array.init n_banks (fun me ->
        {
          member = Member.create ~params ~me ~initial_ring:ring ();
          balances = Hashtbl.create 8;
          applied = 0;
        })
  in
  let sim =
    Netsim.create ~net:Profile.gigabit
      ~tiers:(Array.make n_banks Profile.daemon)
      ~participants:(Array.map (fun l -> Member.participant l.member) ledgers)
      ()
  in
  Netsim.on_deliver sim (fun ~at ~now:_ (d : Message.data) ->
      apply ledgers.(at) d.payload);
  Netsim.on_view sim (fun ~at ~now v ->
      Printf.printf "[%6d us] replica %d: %s\n" (now / 1000) at
        (Fmt.str "%a" Participant.pp_view v));
  (* Transfers from every replica; replica 2 dies mid-stream. *)
  let prng = Aring_util.Prng.create ~seed:99L in
  for op = 1 to 120 do
    let node = Aring_util.Prng.int prng n_banks in
    let src = accounts.(Aring_util.Prng.int prng 3) in
    let dst = accounts.(Aring_util.Prng.int prng 3) in
    let amount = 1 + Aring_util.Prng.int prng 50 in
    Netsim.submit_at sim ~at:(op * 200_000) ~node Types.Safe
      (Bytes.of_string (Printf.sprintf "%s %s %d" src dst amount))
  done;
  Netsim.call_at sim ~at:12_000_000 (fun () ->
      Printf.printf "[ 12000 us] !!! replica 2 crashes\n";
      Netsim.crash sim 2);
  Netsim.run_until sim 2_000_000_000;
  Printf.printf "\nSurviving ledgers:\n";
  let survivors = [ 0; 1; 3 ] in
  List.iter
    (fun i ->
      let l = ledgers.(i) in
      Printf.printf "  replica %d (%3d transfers applied): %s\n" i l.applied
        (String.concat ", "
           (List.map (fun (a, b) -> Printf.sprintf "%s=%d" a b) (snapshot l))))
    survivors;
  let reference = snapshot ledgers.(0) in
  let agree =
    List.for_all (fun i -> snapshot ledgers.(i) = reference) survivors
  in
  (* Money conservation: the three balances always sum to 3000. *)
  let total = List.fold_left (fun acc (_, b) -> acc + b) 0 reference in
  Printf.printf "\nSurvivors agree: %b; money conserved (total=%d): %b\n" agree
    total (total = 3000);
  if not (agree && total = 3000) then exit 1
