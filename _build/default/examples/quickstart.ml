(* Quickstart: a 4-node Accelerated Ring cluster on the simulated network.

   Demonstrates the core API surface:
   - build ring participants ([Member.create]) and a network ([Netsim]),
   - submit totally-ordered messages (Agreed service),
   - observe that every node delivers the same messages in the same order,
   - observe the configuration (view) every node installed.

   Run with: dune exec examples/quickstart.exe *)

open Aring_wire
open Aring_ring
open Aring_sim

let n_nodes = 4

let () =
  Aring_util.Log.setup ();
  (* 1. Create the participants. All four share a bootstrap configuration,
     like Spread daemons sharing a config file. *)
  let ring = Array.init n_nodes (fun i -> i) in
  let members =
    Array.init n_nodes (fun me ->
        Member.create ~params:Params.default ~me ~initial_ring:ring ())
  in
  (* 2. Wire them into a simulated 1-gigabit switched LAN. *)
  let sim =
    Netsim.create ~net:Profile.gigabit
      ~tiers:(Array.make n_nodes Profile.library)
      ~participants:(Array.map Member.participant members)
      ()
  in
  (* 3. Record deliveries. *)
  let streams = Array.make n_nodes [] in
  Netsim.on_deliver sim (fun ~at ~now (d : Message.data) ->
      streams.(at) <- (now, d.pid, d.seq, Bytes.to_string d.payload) :: streams.(at));
  Netsim.on_view sim (fun ~at ~now v ->
      if not v.Participant.transitional then
        Printf.printf "[%6d us] node %d installed %s\n" (now / 1000) at
          (Fmt.str "%a" Participant.pp_view v));
  (* 4. Every node submits a few messages concurrently. *)
  for node = 0 to n_nodes - 1 do
    for k = 1 to 3 do
      Netsim.submit_at sim
        ~at:(100_000 * k)
        ~node Types.Agreed
        (Bytes.of_string (Printf.sprintf "msg %d from node %d" k node))
    done
  done;
  (* 5. Run 50 simulated milliseconds. *)
  Netsim.run_until sim 50_000_000;
  (* 6. Show the total order as node 0 saw it... *)
  Printf.printf "\nTotal order at node 0:\n";
  List.iter
    (fun (at_us, pid, seq, payload) ->
      Printf.printf "  [%6d us] #%d (from node %d): %s\n" (at_us / 1000) seq pid
        payload)
    (List.rev streams.(0));
  (* ...and verify every node delivered exactly the same sequence. *)
  let strip l = List.rev_map (fun (_, pid, seq, p) -> (pid, seq, p)) l in
  let reference = strip streams.(0) in
  let all_agree =
    Array.for_all (fun s -> strip s = reference) streams
  in
  Printf.printf "\nAll %d nodes delivered the same %d messages in the same order: %b\n"
    n_nodes (List.length reference) all_agree;
  if not all_agree then exit 1
