(* Replicated key-value store on totally-ordered multicast.

   The classic state-machine-replication pattern the paper's introduction
   motivates: every replica applies the same commands in the same (Agreed)
   total order, so replicas stay identical without any further
   coordination — even though writes originate at all replicas
   concurrently and the network delays/reorders packets.

   Run with: dune exec examples/kv_store.exe *)

open Aring_wire
open Aring_ring
open Aring_sim
module Prng = Aring_util.Prng

let n_replicas = 5

type command = Set of string * string | Del of string

let encode_command = function
  | Set (k, v) -> Bytes.of_string (Printf.sprintf "S %s %s" k v)
  | Del k -> Bytes.of_string (Printf.sprintf "D %s" k)

let decode_command payload =
  match String.split_on_char ' ' (Bytes.to_string payload) with
  | [ "S"; k; v ] -> Some (Set (k, v))
  | [ "D"; k ] -> Some (Del k)
  | _ -> None

(* One replica = one ring member + an in-memory table updated only from
   the delivery callback. *)
type replica = { member : Member.t; table : (string, string) Hashtbl.t }

let apply replica command =
  match command with
  | Set (k, v) -> Hashtbl.replace replica.table k v
  | Del k -> Hashtbl.remove replica.table k

let snapshot replica =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) replica.table []
  |> List.sort compare

let () =
  Aring_util.Log.setup ();
  let ring = Array.init n_replicas (fun i -> i) in
  let replicas =
    Array.init n_replicas (fun me ->
        {
          member = Member.create ~params:Params.default ~me ~initial_ring:ring ();
          table = Hashtbl.create 64;
        })
  in
  let sim =
    Netsim.create ~net:Profile.gigabit
      ~tiers:(Array.make n_replicas Profile.library)
      ~participants:(Array.map (fun r -> Member.participant r.member) replicas)
      ()
  in
  Netsim.on_deliver sim (fun ~at ~now:_ (d : Message.data) ->
      match decode_command d.payload with
      | Some command -> apply replicas.(at) command
      | None -> ());
  (* Concurrent conflicting writes from every replica: the total order is
     the tie-breaker, and it is the same tie-breaker everywhere. *)
  let prng = Prng.create ~seed:2024L in
  let keys = [| "alpha"; "beta"; "gamma"; "delta" |] in
  for op = 1 to 400 do
    let node = Prng.int prng n_replicas in
    let key = keys.(Prng.int prng (Array.length keys)) in
    let command =
      if Prng.bernoulli prng 0.15 then Del key
      else Set (key, Printf.sprintf "v%d-by-%d" op node)
    in
    Netsim.submit_at sim ~at:(op * 40_000) ~node Types.Agreed
      (encode_command command)
  done;
  Netsim.run_until sim 100_000_000;
  (* Every replica converged to the same table. *)
  let reference = snapshot replicas.(0) in
  Printf.printf "Final store (%d keys) after 400 concurrent ops on %d replicas:\n"
    (List.length reference) n_replicas;
  List.iter (fun (k, v) -> Printf.printf "  %-6s = %s\n" k v) reference;
  let consistent =
    Array.for_all (fun r -> snapshot r = reference) replicas
  in
  Printf.printf "\nAll replicas identical: %b\n" consistent;
  if not consistent then exit 1
