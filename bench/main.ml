(* Full reproduction harness: regenerates every figure of the paper's
   evaluation (Section IV) plus the headline numbers, the related-work
   comparison (Section V), and microbenchmarks of the engine hot paths.

   Usage: dune exec bench/main.exe          (full run)
          dune exec bench/main.exe -- quick (coarser grids, for development)

   The output is organized per experiment; EXPERIMENTS.md records a
   paper-vs-measured summary of a full run. Absolute numbers come from a
   calibrated simulator (see DESIGN.md); the shapes — who wins, by what
   factor, where the knees and crossovers fall — are the reproduction
   target. *)

open Aring_wire
open Aring_ring
open Aring_sim
open Aring_harness
module Stats = Aring_util.Stats

let quick = Array.exists (fun a -> a = "quick") Sys.argv
let mode_hotpath = Array.exists (fun a -> a = "hotpath") Sys.argv
let mode_adaptive = Array.exists (fun a -> a = "adaptive") Sys.argv
let mode_kv = Array.exists (fun a -> a = "kv") Sys.argv
let mode_obs = Array.exists (fun a -> a = "obs") Sys.argv
let mode_recovery = Array.exists (fun a -> a = "recovery") Sys.argv
let mode_load = Array.exists (fun a -> a = "load") Sys.argv
let mode_multiring = Array.exists (fun a -> a = "multiring") Sys.argv

let ms n = n * 1_000_000

(* Tuned flow-control windows, per network (paper methodology: smallest
   personal window reaching maximum throughput, accelerated window giving
   the best throughput at that personal window). *)
let params_for net protocol =
  let pw, gw, aw =
    if net.Profile.bandwidth_bps > 2_000_000_000 then (80, 600, 30)
    else (50, 400, 20)
  in
  match protocol with
  | `Original -> { Params.original with personal_window = pw; global_window = gw }
  | `Accelerated ->
      Params.accelerated ~personal_window:pw ~global_window:gw
        ~accelerated_window:aw ()

let protocol_name = function `Original -> "original" | `Accelerated -> "accelerated"

let spec ~net ~tier ~protocol ~service ~payload ~rate =
  {
    Scenario.default_spec with
    label =
      Printf.sprintf "%s/%s" tier.Profile.tier_name (protocol_name protocol);
    net;
    tier;
    params = params_for net protocol;
    payload;
    service;
    offered_mbps = rate;
    warmup_ns = (if net == Profile.gigabit then ms 100 else ms 60);
    measure_ns = (if quick then ms 120 else ms 250);
  }

let row r =
  let open Scenario in
  Printf.printf "  %-10s %-12s %-7s %8.0f %10.1f %10.1f %10.1f %10.1f\n%!"
    r.spec.tier.Profile.tier_name
    (Params.is_original r.spec.params |> fun o -> if o then "original" else "accelerated")
    (Types.service_to_string r.spec.service)
    r.spec.offered_mbps r.delivered_mbps (Stats.mean r.latency_us)
    (Stats.median r.latency_us)
    (Stats.percentile r.latency_us 99.0)

let header title expectation =
  Printf.printf "\n=== %s ===\n%s\n" title expectation;
  Printf.printf "  %-10s %-12s %-7s %8s %10s %10s %10s %10s\n" "tier" "protocol"
    "service" "offered" "delivered" "mean_us" "p50_us" "p99_us"

let thin l = if quick then List.filteri (fun i _ -> i mod 2 = 0) l else l

let sweep ~title ~expectation ~net ~service ~payload combos =
  header title expectation;
  List.iter
    (fun (tier, protocol, rates) ->
      List.iter
        (fun rate ->
          row (Scenario.run (spec ~net ~tier ~protocol ~service ~payload ~rate)))
        (thin rates);
      print_newline ())
    combos

(* Offered-load grids per tier (clean payload Mbps). *)
let rates_1g = [ 100.; 200.; 300.; 400.; 500.; 600.; 700.; 800.; 900. ]

let rates_10g tier =
  match tier.Profile.tier_name with
  | "library" -> [ 250.; 500.; 1000.; 1500.; 2000.; 2500.; 3000.; 3500.; 4000.; 4500. ]
  | "daemon" -> [ 250.; 500.; 1000.; 1500.; 2000.; 2500.; 3000.; 3200. ]
  | _ -> [ 250.; 500.; 750.; 1000.; 1250.; 1500.; 1750.; 2000.; 2150. ]

let rates_10g_jumbo tier =
  match tier.Profile.tier_name with
  | "library" -> [ 1000.; 2000.; 3000.; 4000.; 5000.; 6000.; 6800. ]
  | "daemon" -> [ 1000.; 2000.; 3000.; 4000.; 5000.; 6000.; 6300. ]
  | _ -> [ 1000.; 2000.; 3000.; 4000.; 5000.; 5500. ]

let both_protocols tier rates =
  [ (tier, `Original, rates); (tier, `Accelerated, rates) ]

let fig1 () =
  sweep ~title:"Figure 1: Agreed delivery latency vs throughput, 1-gigabit"
    ~expectation:
      "Paper: original knee ~500-800 Mbps with latency climbing steeply;\n\
       accelerated sustains >900 Mbps with flat latency; Spread-original has\n\
       distinctly higher latency than the prototypes (delivery on the\n\
       critical path)."
    ~net:Profile.gigabit ~service:Types.Agreed ~payload:1350
    (List.concat_map (fun tier -> both_protocols tier rates_1g) Profile.all_tiers)

(* The paper's Section IV instruments, measured with the trace-driven
   rotation profiler at Figure 1 operating points: rotation time, messages
   per round and the post-token overlap fraction explain WHY acceleration
   moves the latency/throughput curve — the token no longer waits for the
   data it announces. *)
let rotation_profile () =
  Printf.printf
    "\n=== Token-rotation profile at Figure 1 operating points (daemon, 1G) ===\n\
     Paper Section IV: acceleration shortens rotations (the token is not\n\
     delayed behind each burst) and moves most data sends after the token.\n";
  Printf.printf "  %-12s %8s | %9s %12s %12s %10s %10s %10s\n" "protocol"
    "offered" "rotations" "rot_mean_us" "rot_p99_us" "msgs/rnd" "aru/rnd"
    "post_tok";
  List.iter
    (fun protocol ->
      List.iter
        (fun rate ->
          let s =
            {
              (spec ~net:Profile.gigabit ~tier:Profile.daemon ~protocol
                 ~service:Types.Agreed ~payload:1350 ~rate)
              with
              profile_rotation = true;
            }
          in
          let r = Scenario.run s in
          match r.Scenario.rotation with
          | None -> ()
          | Some rot ->
              let open Aring_obs.Rotation in
              Printf.printf
                "  %-12s %8.0f | %9d %12.1f %12.1f %10.1f %10.1f %9.1f%%\n%!"
                (protocol_name protocol) rate rot.rotations
                (Stats.mean rot.rotation_us)
                (Stats.percentile rot.rotation_us 99.0)
                (Stats.mean rot.msgs_per_round)
                (Stats.mean rot.aru_per_round)
                (100.0 *. rot.post_token_fraction))
        (thin [ 300.; 600.; 800. ]);
      print_newline ())
    [ `Original; `Accelerated ]

let fig2 () =
  sweep ~title:"Figure 2: Safe delivery latency vs throughput, 1-gigabit"
    ~expectation:
      "Paper: same pattern as Fig. 1 with higher latencies for the stronger\n\
       service; original supports ~600 Mbps before the sharp rise;\n\
       accelerated reaches >900 Mbps."
    ~net:Profile.gigabit ~service:Types.Safe ~payload:1350
    (List.concat_map (fun tier -> both_protocols tier rates_1g) Profile.all_tiers)

let fig3 () =
  sweep ~title:"Figure 3: Agreed delivery latency vs throughput, 10-gigabit"
    ~expectation:
      "Paper: processing-bound; implementation overhead now separates the\n\
       tiers (library > daemon > Spread in max throughput); accelerated\n\
       improves both axes ~10-40% per tier."
    ~net:Profile.ten_gigabit ~service:Types.Agreed ~payload:1350
    (List.concat_map (fun tier -> both_protocols tier (rates_10g tier)) Profile.all_tiers)

let fig5 () =
  sweep ~title:"Figure 5: Safe delivery latency vs throughput, 10-gigabit"
    ~expectation:
      "Paper: like Fig. 3 with higher latency for the stronger service and\n\
       slightly higher maximum throughputs (delivery off the critical path)."
    ~net:Profile.ten_gigabit ~service:Types.Safe ~payload:1350
    (List.concat_map (fun tier -> both_protocols tier (rates_10g tier)) Profile.all_tiers)

let fig46 service title expectation =
  header title expectation;
  List.iter
    (fun tier ->
      List.iter
        (fun (payload, rates) ->
          List.iter
            (fun rate ->
              row
                (Scenario.run
                   (spec ~net:Profile.ten_gigabit ~tier ~protocol:`Accelerated
                      ~service ~payload ~rate)))
            (thin rates);
          print_newline ())
        [ (1350, rates_10g tier); (8850, rates_10g_jumbo tier) ])
    Profile.all_tiers

let fig4 () =
  fig46 Types.Agreed
    "Figure 4: Agreed delivery, 1350 B vs 8850 B payloads, 10-gigabit (accelerated)"
    "Paper: larger UDP datagrams amortize per-message processing; maxima\n\
     rise from 4.6/3.2/2.1 Gbps to 7.3/6/5.3 Gbps (library/daemon/Spread)."

let fig6 () =
  fig46 Types.Safe
    "Figure 6: Safe delivery, 1350 B vs 8850 B payloads, 10-gigabit (accelerated)"
    "Paper: improvements similar to Fig. 4 for Safe delivery."

let fig7 () =
  sweep ~title:"Figure 7: Safe delivery latency at low throughput, 10-gigabit (Spread)"
    ~expectation:
      "Paper: the crossover — at very low load the original protocol has\n\
       LOWER Safe latency (the accelerated aru can cost an extra round:\n\
       ~520 vs ~620 us at 100 Mbps); the accelerated protocol wins once\n\
       load reaches a few percent of capacity."
    ~net:Profile.ten_gigabit ~service:Types.Safe ~payload:1350
    (both_protocols Profile.spread [ 100.; 200.; 300.; 400.; 500.; 700.; 1000. ])

(* ------------------------------------------------------------------ *)
(* Headline maxima                                                     *)

let find_max ~net ~tier ~protocol ~payload ~hi =
  let s =
    {
      (spec ~net ~tier ~protocol ~service:Types.Agreed ~payload ~rate:100.)
      with
      warmup_ns = ms 50;
      measure_ns = ms 150;
    }
  in
  Scenario.find_max_throughput ~lo_mbps:100. ~hi_mbps:hi ~tolerance_mbps:50. s

let headline () =
  Printf.printf "\n=== Headline: maximum sustained throughput (Agreed, Mbps) ===\n";
  Printf.printf
    "Paper: 1G/1350B Spread-accelerated >920 (saturation; original ~800 after\n\
     tuning, with very high latency). 10G/1350B maxima: library 4600,\n\
     daemon 3300, Spread 2300 (accelerated) vs Spread 1700 (original).\n\
     10G/8850B: library 7300, daemon 6000, Spread 5300.\n\n";
  Printf.printf "  %-8s %-10s %-12s %8s | %10s %12s\n" "net" "tier" "protocol"
    "payload" "max_mbps" "lat_mean_us";
  let combos =
    List.concat_map
      (fun tier ->
        [
          (Profile.gigabit, tier, `Original, 1350, 1200.);
          (Profile.gigabit, tier, `Accelerated, 1350, 1200.);
          (Profile.ten_gigabit, tier, `Original, 1350, 6000.);
          (Profile.ten_gigabit, tier, `Accelerated, 1350, 6000.);
          (Profile.ten_gigabit, tier, `Accelerated, 8850, 12000.);
        ])
      Profile.all_tiers
  in
  List.iter
    (fun (net, tier, protocol, payload, hi) ->
      let r = find_max ~net ~tier ~protocol ~payload ~hi in
      Printf.printf "  %-8s %-10s %-12s %8d | %10.0f %12.1f\n%!"
        net.Profile.net_name tier.Profile.tier_name (protocol_name protocol)
        payload r.Scenario.delivered_mbps
        (Stats.mean r.Scenario.latency_us))
    combos

(* ------------------------------------------------------------------ *)
(* Related work: fixed-sequencer baseline (Section V)                  *)

let related () =
  header "Related work: fixed-sequencer total order (JGroups-style), 1-gigabit"
    "Paper measured JGroups total ordering at ~650 Mbps on the same 1G\n\
     cluster (1350 B). Our fixed-sequencer baseline shows the classic\n\
     profile: competitive raw throughput, latency concentrated at the\n\
     sequencer, and no Safe/EVS semantics (see DESIGN.md).";
  let tier = Profile.daemon in
  List.iter
    (fun rate ->
      let s =
        {
          (spec ~net:Profile.gigabit ~tier ~protocol:`Accelerated
             ~service:Types.Agreed ~payload:1350 ~rate)
          with
          label = "sequencer";
        }
      in
      let participants =
        Array.init s.Scenario.n_nodes (fun me ->
            Aring_baselines.Sequencer.participant
              (Aring_baselines.Sequencer.create ~me ~n:s.Scenario.n_nodes ()))
      in
      let r = Scenario.run_custom s ~participants in
      Printf.printf "  %-10s %-12s %-7s %8.0f %10.1f %10.1f %10.1f %10.1f\n%!"
        tier.Profile.tier_name "sequencer" "agreed" rate
        r.Scenario.delivered_mbps
        (Stats.mean r.Scenario.latency_us)
        (Stats.median r.Scenario.latency_us)
        (Stats.percentile r.Scenario.latency_us 99.0))
    (thin rates_1g)

let related_ring_paxos () =
  header "Related work: Ring Paxos (simplified, Section V)"
    "Paper measured U-Ring Paxos at >750 Mbps on 1G (1350 B, batching) with\n\
     a latency profile similar to the original Ring protocol's Safe\n\
     delivery, and ~1.5 Gbps on 10G. Our simplified Ring Paxos (no\n\
     batching, fast path only) is measured on the same profiles. Note the\n\
     semantics gap the paper stresses: no Safe-equivalent cheap service,\n\
     no partitionable membership.";
  let run_paxos net tier rate =
    let s =
      {
        (spec ~net ~tier ~protocol:`Accelerated ~service:Types.Agreed
           ~payload:1350 ~rate)
        with
        label = "ring-paxos";
      }
    in
    let participants =
      Array.init s.Scenario.n_nodes (fun me ->
          Aring_baselines.Ring_paxos.participant
            (Aring_baselines.Ring_paxos.create ~me ~n:s.Scenario.n_nodes ()))
    in
    let r = Scenario.run_custom s ~participants in
    Printf.printf "  %-10s %-12s %-7s %8.0f %10.1f %10.1f %10.1f %10.1f\n%!"
      (tier.Profile.tier_name ^ "/" ^ net.Profile.net_name)
      "ring-paxos" "agreed" rate r.Scenario.delivered_mbps
      (Stats.mean r.Scenario.latency_us)
      (Stats.median r.Scenario.latency_us)
      (Stats.percentile r.Scenario.latency_us 99.0)
  in
  List.iter (run_paxos Profile.gigabit Profile.daemon) (thin [ 100.; 300.; 500.; 700.; 800. ]);
  print_newline ();
  List.iter (run_paxos Profile.ten_gigabit Profile.daemon)
    (thin [ 500.; 1000.; 1500.; 2000.; 2500. ])

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices behind the headline result            *)

let ablation_spec ~params ~rate ~net ~tier =
  {
    (spec ~net ~tier ~protocol:`Accelerated ~service:Types.Agreed ~payload:1350
       ~rate)
    with
    params;
  }

let ablation_accel_window () =
  header "Ablation: accelerated window size (Spread tier, 1G)"
    "The single new knob of the paper. 0 = original protocol. At 800 Mbps\n\
     a small window already collapses latency (faster rotations mean small\n\
     per-round batches); at 950 Mbps only accelerated configurations\n\
     sustain the load at all. The paper tunes aw per deployment.";
  List.iter
    (fun aw ->
      let params =
        if aw = 0 then { Params.original with personal_window = 50; global_window = 400 }
        else
          Params.accelerated ~personal_window:50 ~global_window:400
            ~accelerated_window:aw ()
      in
      let r800 =
        Scenario.run
          (ablation_spec ~params ~rate:800. ~net:Profile.gigabit
             ~tier:Profile.spread)
      in
      let r950 =
        Scenario.run
          (ablation_spec ~params ~rate:950. ~net:Profile.gigabit
             ~tier:Profile.spread)
      in
      Printf.printf
        "  aw=%-3d @800: lat=%8.1f us rounds=%4d | @950: delivered=%7.1f Mbps lat=%9.1f us\n%!"
        aw
        (Stats.mean r800.Scenario.latency_us)
        r800.Scenario.token_rounds r950.Scenario.delivered_mbps
        (Stats.mean r950.Scenario.latency_us))
    [ 0; 5; 10; 20; 35; 50 ]

let ablation_priority_method () =
  header "Ablation: token-priority switching method (daemon tier, 10G)"
    "Method 1 (aggressive) maximizes token speed; method 2 (conservative)\n\
     slows it slightly to bound data backlog — identical to the original\n\
     protocol when the accelerated window is 0 (paper Section III-C).";
  List.iter
    (fun (name, prio) ->
      List.iter
        (fun rate ->
          let params =
            Params.accelerated ~personal_window:80 ~global_window:600
              ~accelerated_window:30 ~priority_method:prio ()
          in
          let r =
            Scenario.run
              (ablation_spec ~params ~rate ~net:Profile.ten_gigabit
                 ~tier:Profile.daemon)
          in
          Printf.printf
            "  %-13s rate=%5.0f delivered=%7.1f Mbps  latency mean=%8.1f us p99=%8.1f us\n%!"
            name rate r.Scenario.delivered_mbps
            (Stats.mean r.Scenario.latency_us)
            (Stats.percentile r.Scenario.latency_us 99.0))
        [ 1000.; 2000.; 3000. ];
      print_newline ())
    [ ("aggressive", Params.Aggressive); ("conservative", Params.Conservative) ]

let ablation_personal_window () =
  header "Ablation: personal window (Spread tier, 1G, accelerated, 700 Mbps)"
    "Paper methodology: pick the smallest personal window that still\n\
     reaches the target throughput. Tiny windows (2-3) starve the rotation\n\
     budget and collapse; beyond the sustaining point, growing the window\n\
     changes nothing at this load.";
  List.iter
    (fun pw ->
      let params =
        Params.accelerated ~personal_window:pw ~global_window:(8 * pw)
          ~accelerated_window:(min 20 pw) ()
      in
      let r =
        Scenario.run
          (ablation_spec ~params ~rate:700. ~net:Profile.gigabit
             ~tier:Profile.spread)
      in
      Printf.printf "  pw=%-4d delivered=%7.1f Mbps  latency mean=%8.1f us p99=%8.1f us\n%!"
        pw r.Scenario.delivered_mbps
        (Stats.mean r.Scenario.latency_us)
        (Stats.percentile r.Scenario.latency_us 99.0))
    [ 2; 3; 5; 15; 60; 200 ]

let ablation_loss_resilience () =
  header "Ablation: random packet loss (daemon tier, 1G, 500 Mbps, accelerated)"
    "Flow control plus the rtr mechanism absorb loss: throughput holds\n\
     while retransmissions climb, at the cost of in-order delivery stalls\n\
     (a gap blocks delivery until the rtr round trip completes).\n\
     Delivered can transiently exceed offered as recovered backlog drains\n\
     into the measurement window.";
  List.iter
    (fun loss ->
      let s =
        {
          (spec ~net:(Profile.with_loss Profile.gigabit loss)
             ~tier:Profile.daemon ~protocol:`Accelerated ~service:Types.Agreed
             ~payload:1350 ~rate:500.)
          with
          label = Printf.sprintf "loss=%.3f" loss;
        }
      in
      let r = Scenario.run s in
      Printf.printf
        "  loss=%4.1f%% delivered=%7.1f Mbps  latency mean=%8.1f us p99=%9.1f us retrans=%d\n%!"
        (loss *. 100.) r.Scenario.delivered_mbps
        (Stats.mean r.Scenario.latency_us)
        (Stats.percentile r.Scenario.latency_us 99.0)
        r.Scenario.retransmissions)
    [ 0.0; 0.001; 0.005; 0.02 ]

let ablation_jumbo_frames () =
  header "Extension: jumbo frames (paper future work), 8850 B payloads, 10G"
    "The paper deliberately avoids jumbo frames for applicability but\n\
     conjectures they would improve the large-datagram runs further: a\n\
     9000-byte MTU turns six kernel fragments into one.";
  List.iter
    (fun (name, net) ->
      List.iter
        (fun rate ->
          let r =
            Scenario.run
              (spec ~net ~tier:Profile.spread ~protocol:`Accelerated
                 ~service:Types.Agreed ~payload:8850 ~rate)
          in
          Printf.printf
            "  %-12s rate=%6.0f delivered=%8.1f Mbps  latency mean=%8.1f us p99=%8.1f us\n%!"
            name rate r.Scenario.delivered_mbps
            (Stats.mean r.Scenario.latency_us)
            (Stats.percentile r.Scenario.latency_us 99.0))
        (thin [ 2000.; 5500.; 7000.; 8500. ]);
      print_newline ())
    [
      ("mtu=1500", Profile.ten_gigabit);
      ("mtu=9000", Profile.with_jumbo_frames Profile.ten_gigabit);
    ]

(* Small-message packing: a daemon cluster where every client message is
   120 bytes — Spread's packing coalesces them into full protocol packets. *)
let ablation_packing () =
  header "Extension: Spread-style message packing (120 B messages, 1G, daemon)"
    "Spread packs small messages into one protocol packet (Section\n\
     IV-A.3). Packed runs move far fewer protocol packets for the same\n\
     client-message rate, lifting the achievable small-message rate.";
  let open Aring_ring in
  let open Aring_daemon in
  let run_packing ~packing ~rate_kmsgs =
    let n = 8 in
    let ring = Array.init n (fun i -> i) in
    let members =
      Array.init n (fun me ->
          Member.create ~params:(params_for Profile.gigabit `Accelerated) ~me
            ~initial_ring:ring ())
    in
    let daemons =
      Array.map (fun m -> Daemon.create ~packing ~member:m ()) members
    in
    let sim =
      Netsim.create ~net:Profile.gigabit
        ~tiers:(Array.make n Profile.daemon)
        ~participants:(Array.map Daemon.participant daemons)
        ~seed:5L ()
    in
    let lat = Stats.create () in
    let delivered = ref 0 in
    let warmup = ms 100 and t_end = ms 300 in
    let sessions =
      Array.init n (fun i ->
          let cb =
            {
              Daemon.on_message =
                (fun ~sender:_ ~groups:_ _service payload ->
                  let now = Netsim.now sim in
                  if now >= warmup && now < t_end then begin
                    incr delivered;
                    let sent = Int64.to_int (Bytes.get_int64_be payload 0) in
                    Stats.add lat (float_of_int (now - sent) /. 1e3)
                  end);
              on_group_view = (fun ~group:_ ~members:_ -> ());
            }
          in
          let s = Daemon.connect daemons.(i) ~name:(Printf.sprintf "c%d" i) cb in
          Daemon.join daemons.(i) s "bench";
          s)
    in
    let interval_ns = 1_000_000_000 * n / (rate_kmsgs * 1000) / n in
    for node = 0 to n - 1 do
      let rec tick () =
        let now = Netsim.now sim in
        if now < t_end then begin
          let payload = Bytes.create 120 in
          Bytes.set_int64_be payload 0 (Int64.of_int now);
          Daemon.multicast daemons.(node) sessions.(node) ~groups:[ "bench" ]
            payload;
          Netsim.call_at sim ~at:(now + (interval_ns * n)) tick
        end
      in
      Netsim.call_at sim ~at:(ms 5 + (node * interval_ns)) tick
    done;
    Netsim.run_until sim t_end;
    let rate_meas =
      float_of_int !delivered /. float_of_int n
      /. (float_of_int (t_end - warmup) /. 1e9)
    in
    let packs =
      Array.fold_left (fun acc d -> acc + (Daemon.stats d).packs_sent) 0 daemons
    in
    Printf.printf
      "  packing=%-5b offered=%3dk msg/s delivered=%8.0f msg/s  latency mean=%8.1f us p99=%8.1f us packs=%d\n%!"
      packing rate_kmsgs rate_meas (Stats.mean lat)
      (Stats.percentile lat 99.0)
      packs
  in
  List.iter
    (fun rate_kmsgs ->
      run_packing ~packing:false ~rate_kmsgs;
      run_packing ~packing:true ~rate_kmsgs;
      print_newline ())
    (thin [ 50; 150; 250; 350 ])

let ablations () =
  ablation_accel_window ();
  ablation_priority_method ();
  ablation_personal_window ();
  ablation_loss_resilience ();
  ablation_jumbo_frames ();
  ablation_packing ()

(* ------------------------------------------------------------------ *)
(* Microbenchmarks (Bechamel)                                          *)

let micro () =
  let open Bechamel in
  Printf.printf "\n=== Microbenchmarks: engine hot paths (Bechamel) ===\n%!";
  let rid : Types.ring_id = { rep = 0; ring_seq = 1 } in
  let bench_codec =
    let msg =
      Message.Data
        {
          d_ring = rid;
          seq = 42;
          pid = 3;
          d_round = 7;
          post_token = false;
          service = Types.Agreed;
          payload = Bytes.create 1350;
        }
    in
    Test.make ~name:"codec: encode+decode 1350B data"
      (Staged.stage (fun () -> ignore (Message.decode (Message.encode msg))))
  in
  let bench_token =
    (* One idle token round at a single-participant engine. *)
    let eng =
      Engine.create ~params:(Params.accelerated ()) ~ring_id:rid
        ~ring:[| 0 |] ~me:0
    in
    let tok = ref (Engine.initial_token rid) in
    Test.make ~name:"engine: idle token round"
      (Staged.stage (fun () ->
           let outputs = Engine.handle eng (Engine.Token_received !tok) in
           List.iter
             (function Engine.Send_token (_, t) -> tok := t | _ -> ())
             outputs))
  in
  let bench_data =
    let eng =
      Engine.create ~params:(Params.accelerated ()) ~ring_id:rid
        ~ring:[| 0; 1 |] ~me:0
    in
    let seq = ref 0 in
    Test.make ~name:"engine: receive one data message"
      (Staged.stage (fun () ->
           incr seq;
           let d : Message.data =
             {
               d_ring = rid;
               seq = !seq;
               pid = 1;
               d_round = 1;
               post_token = false;
               service = Types.Agreed;
               payload = Bytes.empty;
             }
           in
           ignore (Engine.handle eng (Engine.Data_received d))))
  in
  let bench_heap =
    Test.make ~name:"heap: push+pop 256 events"
      (Staged.stage (fun () ->
           let h = Aring_util.Heap.create ~cmp:compare in
           for i = 0 to 255 do
             Aring_util.Heap.push h ((i * 7919) mod 997)
           done;
           while not (Aring_util.Heap.is_empty h) do
             ignore (Aring_util.Heap.pop h)
           done))
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
    let results = Benchmark.all cfg [ clock ] test in
    Hashtbl.iter
      (fun name raw ->
        let ols =
          Analyze.one
            (Analyze.ols ~bootstrap:0 ~r_square:false
               ~predictors:[| Measure.run |])
            clock raw
        in
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Printf.printf "  %-40s %12.1f ns/op\n%!" name est
        | Some _ | None -> Printf.printf "  %-40s (no estimate)\n%!" name)
      results
  in
  List.iter benchmark [ bench_codec; bench_token; bench_data; bench_heap ]

(* ------------------------------------------------------------------ *)
(* Hot-path allocation benchmark (`-- hotpath [quick]`)                 *)
(* Emits BENCH_hotpath.json and fails (exit 1) if allocation per        *)
(* delivered message exceeds the committed budget in                    *)
(* bench/hotpath_budget.json. Schema documented in EXPERIMENTS.md.      *)

module Json = Aring_obs.Json

let json_float = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

(* Allocated bytes per call of [f], measured with [Gc.allocated_bytes]
   (precise: counts minor allocations, independent of GC timing). *)
let alloc_per_call ~iters f =
  for _ = 1 to 1_000 do f () done;
  let before = Gc.allocated_bytes () in
  for _ = 1 to iters do f () done;
  let after = Gc.allocated_bytes () in
  (after -. before) /. float_of_int iters

let hotpath () =
  Printf.printf "=== Hot-path allocation benchmark%s ===\n%!"
    (if quick then " [QUICK MODE]" else "");
  let iters = if quick then 20_000 else 200_000 in
  let rid : Types.ring_id = { rep = 0; ring_seq = 1 } in
  let data_msg =
    Message.Data
      {
        d_ring = rid;
        seq = 42;
        pid = 3;
        d_round = 7;
        post_token = false;
        service = Types.Agreed;
        payload = Bytes.create 1350;
      }
  in
  let token_msg =
    Message.Token
      {
        t_ring = rid;
        token_id = 17;
        t_round = 9;
        t_seq = 4096;
        aru = 4080;
        aru_id = Some 3;
        fcc = 55;
        rtr = [ 4081; 4085; 4090 ];
      }
  in
  (* Codec: the Buffer-based reference path (the pre-pool encoder, kept
     verbatim) vs the pooled scratch/cursor path, same messages. *)
  let pool = Message.Pool.create () in
  let data_frame = Message.encode data_msg in
  let token_frame = Message.encode token_msg in
  let enc_ref =
    alloc_per_call ~iters (fun () ->
        ignore (Message.encode data_msg);
        ignore (Message.encode token_msg))
  in
  let enc_pool =
    alloc_per_call ~iters (fun () ->
        ignore (Message.Pool.encode_view pool data_msg);
        ignore (Message.Pool.encode_view pool token_msg))
  in
  let dec_ref =
    alloc_per_call ~iters (fun () ->
        ignore (Message.decode data_frame);
        ignore (Message.decode token_frame))
  in
  let dec_pool =
    alloc_per_call ~iters (fun () ->
        ignore (Message.Pool.decode pool data_frame);
        ignore (Message.Pool.decode pool token_frame))
  in
  (* Per message-pair above; normalize to per message. *)
  let enc_ref = enc_ref /. 2. and enc_pool = enc_pool /. 2. in
  let dec_ref = dec_ref /. 2. and dec_pool = dec_pool /. 2. in
  let roundtrip_ref = enc_ref +. dec_ref in
  let roundtrip_pooled = enc_pool +. dec_pool in
  let codec_reduction =
    100. *. (1. -. (roundtrip_pooled /. roundtrip_ref))
  in
  Printf.printf
    "codec (bytes allocated per message, 1350B data + token):\n\
    \  encode   reference %8.1f   pooled %8.1f\n\
    \  decode   reference %8.1f   pooled %8.1f\n\
    \  roundtrip reduction %.1f%%\n%!"
    enc_ref enc_pool dec_ref dec_pool codec_reduction;
  (* Pipeline: the paper's 10G library-tier Agreed workload, run once
     untraced to measure allocation and wall rate, once with the rotation
     profiler (whose trace sink itself allocates) for rotation latency. *)
  let pipeline_spec =
    {
      (spec ~net:Profile.ten_gigabit ~tier:Profile.library
         ~protocol:`Accelerated ~service:Types.Agreed ~payload:1350
         ~rate:2000.)
      with
      label = "hotpath";
      warmup_ns = ms 50;
      measure_ns = (if quick then ms 100 else ms 250);
    }
  in
  let cpu0 = Sys.time () in
  let before = Gc.allocated_bytes () in
  let r = Scenario.run pipeline_spec in
  let after = Gc.allocated_bytes () in
  let cpu_s = Sys.time () -. cpu0 in
  let deliveries = r.Scenario.deliveries in
  let alloc_per_msg =
    if deliveries = 0 then infinity
    else (after -. before) /. float_of_int deliveries
  in
  let msgs_per_sec =
    if cpu_s <= 0. then 0. else float_of_int deliveries /. cpu_s
  in
  let rot = Scenario.run { pipeline_spec with profile_rotation = true } in
  let rotation_p50, rotation_p99, rotation_p999 =
    match rot.Scenario.rotation with
    | Some prof ->
        ( Stats.median prof.Aring_obs.Rotation.rotation_us,
          Stats.percentile prof.Aring_obs.Rotation.rotation_us 99.0,
          Stats.percentile prof.Aring_obs.Rotation.rotation_us 99.9 )
    | None -> (0., 0., 0.)
  in
  Printf.printf
    "pipeline (10G library tier, Agreed, 1350B, %.0f Mbps offered):\n\
    \  deliveries %d  delivered %.1f Mbps  msgs/sec (host CPU) %.0f\n\
    \  allocated bytes per delivered message %.1f\n\
    \  rotation p50 %.1f us  p99 %.1f us\n%!"
    pipeline_spec.Scenario.offered_mbps deliveries r.Scenario.delivered_mbps
    msgs_per_sec alloc_per_msg rotation_p50 rotation_p99;
  (* Committed budget gate. *)
  let budget_path = "bench/hotpath_budget.json" in
  let budget =
    try
      let ic = open_in budget_path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some (Json.of_string s)
    with Sys_error _ | Json.Parse_error _ -> None
  in
  let max_alloc =
    Option.bind budget (fun b ->
        json_float (Json.member "max_pipeline_alloc_bytes_per_msg" b))
  in
  let min_reduction =
    Option.bind budget (fun b ->
        json_float (Json.member "min_codec_reduction_percent" b))
  in
  let alloc_ok =
    match max_alloc with None -> true | Some m -> alloc_per_msg <= m
  in
  let reduction_ok =
    match min_reduction with
    | None -> true
    | Some m -> codec_reduction >= m
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "aring.bench.hotpath/1");
        ("mode", Json.String (if quick then "quick" else "full"));
        ( "workload",
          Json.Obj
            [
              ("net", Json.String "10g");
              ("tier", Json.String "library");
              ("service", Json.String "agreed");
              ("payload_bytes", Json.Int 1350);
              ("offered_mbps", Json.Float pipeline_spec.Scenario.offered_mbps);
            ] );
        ( "pipeline",
          Json.Obj
            [
              ("deliveries", Json.Int deliveries);
              ("delivered_mbps", Json.Float r.Scenario.delivered_mbps);
              ("msgs_per_sec", Json.Float msgs_per_sec);
              ("alloc_bytes_per_msg", Json.Float alloc_per_msg);
              ("rotation_p50_us", Json.Float rotation_p50);
              ("rotation_p99_us", Json.Float rotation_p99);
              ("rotation_p999_us", Json.Float rotation_p999);
            ] );
        ( "codec",
          Json.Obj
            [
              ("iters", Json.Int iters);
              ("encode_ref_bytes_per_msg", Json.Float enc_ref);
              ("encode_pooled_bytes_per_msg", Json.Float enc_pool);
              ("decode_ref_bytes_per_msg", Json.Float dec_ref);
              ("decode_pooled_bytes_per_msg", Json.Float dec_pool);
              ("roundtrip_reduction_percent", Json.Float codec_reduction);
            ] );
        ( "budget",
          Json.Obj
            [
              ( "max_pipeline_alloc_bytes_per_msg",
                match max_alloc with Some m -> Json.Float m | None -> Json.Null
              );
              ( "min_codec_reduction_percent",
                match min_reduction with
                | Some m -> Json.Float m
                | None -> Json.Null );
              ("pass", Json.Bool (alloc_ok && reduction_ok));
            ] );
      ]
  in
  let oc = open_out "BENCH_hotpath.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_hotpath.json\n%!";
  if not alloc_ok then
    Printf.printf
      "BUDGET FAIL: %.1f allocated bytes/msg exceeds budget %.1f\n%!"
      alloc_per_msg
      (Option.get max_alloc);
  if not reduction_ok then
    Printf.printf
      "BUDGET FAIL: codec reduction %.1f%% below required %.1f%%\n%!"
      codec_reduction
      (Option.get min_reduction);
  if budget = None then
    Printf.printf "note: no readable %s; budget gate skipped\n%!" budget_path;
  if not (alloc_ok && reduction_ok) then exit 1

(* ------------------------------------------------------------------ *)
(* Adaptive accelerated-window sweep (`-- adaptive [quick]`)            *)
(* Step workload on the 1G Spread tier: the offered load jumps          *)
(* 100 -> 900 -> 100 Mbps mid-run. Every static accelerated window is   *)
(* swept against the AIMD controller on the same schedule; per-phase    *)
(* latencies go to BENCH_adaptive.json and the committed                *)
(* bench/adaptive_budget.json gates the adaptive-vs-static ratios.      *)

module Controller = Aring_control.Controller

let adaptive_params aw =
  if aw = 0 then { Params.original with personal_window = 50; global_window = 400 }
  else
    Params.accelerated ~personal_window:50 ~global_window:400
      ~accelerated_window:aw ()

let adaptive () =
  Printf.printf "=== Adaptive accelerated-window benchmark%s ===\n%!"
    (if quick then " [QUICK MODE]" else "");
  let warmup = ms 100 in
  let phase_ns = if quick then ms 80 else ms 150 in
  let low = 100. and high = 900. in
  let statics = [ 0; 5; 10; 20; 35; 50 ] in
  let spec_for ~label ~aw ~controller =
    {
      Scenario.default_spec with
      label;
      net = Profile.gigabit;
      tier = Profile.spread;
      params = adaptive_params aw;
      payload = 1350;
      service = Types.Agreed;
      offered_mbps = low;
      load =
        Scenario.step_load ~low ~high ~at_ns:(warmup + phase_ns)
          ~until_ns:(warmup + (2 * phase_ns));
      warmup_ns = warmup;
      measure_ns = 3 * phase_ns;
      controller;
    }
  in
  (* A phase that fails to keep up with the offered load scores infinity:
     under open-loop overload the backlog (and so the latency) grows for
     as long as the phase lasts, so the mean alone already separates the
     configurations that sustain the load from those that collapse. *)
  let score (p : Scenario.phase) =
    if p.Scenario.p_delivered_mbps < 0.90 *. p.Scenario.p_offered_mbps then
      infinity
    else Stats.mean p.Scenario.p_latency_us
  in
  let print_run name (r : Scenario.result) =
    Printf.printf "  %-10s" name;
    List.iter
      (fun (p : Scenario.phase) ->
        Printf.printf " | %4.0f Mbps: del=%6.1f lat=%8.1f us"
          p.Scenario.p_offered_mbps p.Scenario.p_delivered_mbps
          (Stats.mean p.Scenario.p_latency_us))
      r.Scenario.phases;
    print_newline ()
  in
  Printf.printf
    "step workload: %.0f -> %.0f -> %.0f Mbps (%d ms per phase), Spread tier, 1G, Agreed\n%!"
    low high low (phase_ns / 1_000_000);
  let static_runs =
    List.map
      (fun aw ->
        let r =
          Scenario.run
            (spec_for ~label:(Printf.sprintf "static/aw=%d" aw) ~aw
               ~controller:None)
        in
        print_run (Printf.sprintf "aw=%d" aw) r;
        (aw, r))
      statics
  in
  let r_adaptive =
    Scenario.run
      (spec_for ~label:"adaptive" ~aw:20
         ~controller:(Some (Controller.default_config ~aw_max:50 ())))
  in
  print_run "adaptive" r_adaptive;
  let m = r_adaptive.Scenario.metrics in
  Printf.printf
    "  controller: %d decisions (%d up, %d down, %d congestion signals), last window %.0f\n%!"
    (Aring_obs.Metrics.counter_value m "control.decisions")
    (Aring_obs.Metrics.counter_value m "control.increases")
    (Aring_obs.Metrics.counter_value m "control.decreases")
    (Aring_obs.Metrics.counter_value m "control.congestions")
    (match List.assoc_opt "control.window" (Aring_obs.Metrics.gauges m) with
    | Some w -> w
    | None -> nan);
  (* Per-phase comparison: the adaptive run against the best and worst
     static window for that phase. *)
  let phase_stats =
    List.mapi
      (fun i (ap : Scenario.phase) ->
        let static_scores =
          List.map (fun (aw, r) -> (aw, score (List.nth r.Scenario.phases i)))
            static_runs
        in
        let best_aw, best =
          List.fold_left
            (fun (ba, bs) (aw, s) -> if s < bs then (aw, s) else (ba, bs))
            (-1, infinity) static_scores
        in
        let worst_aw, worst =
          List.fold_left
            (fun (wa, ws) (aw, s) -> if s > ws then (aw, s) else (wa, ws))
            (-1, neg_infinity) static_scores
        in
        let a = score ap in
        let ratio = if Float.is_finite best then a /. best else nan in
        (i, ap, a, (best_aw, best), (worst_aw, worst), ratio))
      r_adaptive.Scenario.phases
  in
  Printf.printf "\nper-phase summary (mean latency, us; inf = failed to sustain):\n";
  List.iter
    (fun (i, (p : Scenario.phase), a, (best_aw, best), (worst_aw, worst), ratio) ->
      Printf.printf
        "  phase %d (%4.0f Mbps): adaptive %8.1f | best static aw=%-2d %8.1f \
         (ratio %.2f) | worst static aw=%-2d %s\n%!"
        (i + 1) p.Scenario.p_offered_mbps a best_aw best ratio worst_aw
        (if Float.is_finite worst then Printf.sprintf "%8.1f" worst
         else "collapsed"))
    phase_stats;
  (* Committed budget gate. *)
  let budget_path = "bench/adaptive_budget.json" in
  let budget =
    try
      let ic = open_in budget_path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some (Json.of_string s)
    with Sys_error _ | Json.Parse_error _ -> None
  in
  let max_ratio =
    Option.bind budget (fun b ->
        json_float (Json.member "max_ratio_vs_best_static" b))
  in
  let beats_worst_req =
    match Option.bind budget (Json.member "require_beats_worst_static") with
    | Some (Json.Bool v) -> v
    | _ -> false
  in
  let ratio_ok =
    match max_ratio with
    | None -> true
    | Some m ->
        List.for_all (fun (_, _, _, _, _, ratio) -> ratio <= m) phase_stats
  in
  let worst_ok =
    (not beats_worst_req)
    || List.for_all (fun (_, _, a, _, (_, worst), _) -> a < worst) phase_stats
  in
  let json_score s = if Float.is_finite s then Json.Float s else Json.Null in
  let phase_json (i, (p : Scenario.phase), a, (best_aw, best), (worst_aw, worst), ratio) =
    Json.Obj
      [
        ("index", Json.Int i);
        ("offered_mbps", Json.Float p.Scenario.p_offered_mbps);
        ("adaptive_lat_us", json_score a);
        ( "adaptive_lat_p999_us",
          json_score (Stats.percentile p.Scenario.p_latency_us 99.9) );
        ("adaptive_delivered_mbps", Json.Float p.Scenario.p_delivered_mbps);
        ("best_static_aw", Json.Int best_aw);
        ("best_static_lat_us", json_score best);
        ("worst_static_aw", Json.Int worst_aw);
        ("worst_static_lat_us", json_score worst);
        ("ratio_vs_best", json_score ratio);
      ]
  in
  let static_json (aw, (r : Scenario.result)) =
    Json.Obj
      [
        ("aw", Json.Int aw);
        ( "phases",
          Json.List
            (List.map
               (fun (p : Scenario.phase) ->
                 Json.Obj
                   [
                     ("offered_mbps", Json.Float p.Scenario.p_offered_mbps);
                     ("delivered_mbps", Json.Float p.Scenario.p_delivered_mbps);
                     ( "lat_mean_us",
                       json_score (Stats.mean p.Scenario.p_latency_us) );
                     ( "lat_p99_us",
                       json_score (Stats.percentile p.Scenario.p_latency_us 99.0)
                     );
                     ( "lat_p999_us",
                       json_score (Stats.percentile p.Scenario.p_latency_us 99.9)
                     );
                   ])
               r.Scenario.phases) );
      ]
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "aring.bench.adaptive/1");
        ("mode", Json.String (if quick then "quick" else "full"));
        ( "workload",
          Json.Obj
            [
              ("net", Json.String "1g");
              ("tier", Json.String "spread");
              ("service", Json.String "agreed");
              ("payload_bytes", Json.Int 1350);
              ("low_mbps", Json.Float low);
              ("high_mbps", Json.Float high);
              ("phase_ms", Json.Int (phase_ns / 1_000_000));
            ] );
        ("phases", Json.List (List.map phase_json phase_stats));
        ("statics", Json.List (List.map static_json static_runs));
        ( "controller",
          Json.Obj
            [
              ( "decisions",
                Json.Int (Aring_obs.Metrics.counter_value m "control.decisions")
              );
              ( "increases",
                Json.Int (Aring_obs.Metrics.counter_value m "control.increases")
              );
              ( "decreases",
                Json.Int (Aring_obs.Metrics.counter_value m "control.decreases")
              );
              ( "congestions",
                Json.Int
                  (Aring_obs.Metrics.counter_value m "control.congestions") );
            ] );
        ( "budget",
          Json.Obj
            [
              ( "max_ratio_vs_best_static",
                match max_ratio with Some v -> Json.Float v | None -> Json.Null
              );
              ("require_beats_worst_static", Json.Bool beats_worst_req);
              ("pass", Json.Bool (ratio_ok && worst_ok));
            ] );
      ]
  in
  let oc = open_out "BENCH_adaptive.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_adaptive.json\n%!";
  if not ratio_ok then
    Printf.printf
      "BUDGET FAIL: adaptive/best-static latency ratio exceeds %.2f in some phase\n%!"
      (Option.get max_ratio);
  if not worst_ok then
    Printf.printf
      "BUDGET FAIL: adaptive does not beat the worst static window in every phase\n%!";
  if budget = None then
    Printf.printf "note: no readable %s; budget gate skipped\n%!" budget_path;
  if not (ratio_ok && worst_ok) then exit 1

(* ------------------------------------------------------------------ *)
(* Replicated KV store benchmark (`-- kv [quick]`)                      *)
(* Steady-state op throughput and latency of the daemon-hosted KV       *)
(* replicas, the same workload across a partition + state transfer,     *)
(* and a state-transfer cost sweep vs store size. Every run carries     *)
(* the end-to-end consistency oracle: a violation or a failure to       *)
(* re-converge is a hard failure regardless of the budget file.         *)
(* Emits BENCH_kv.json, gated by bench/kv_budget.json.                  *)

module Kv_scenario = Aring_app.Kv_scenario

let bench_kv () =
  Printf.printf "=== Replicated KV store benchmark%s ===\n%!"
    (if quick then " [QUICK MODE]" else "");
  let measure_ns = if quick then ms 150 else ms 400 in
  let steady =
    Kv_scenario.run
      {
        Kv_scenario.default_spec with
        label = "kv-steady";
        measure_ns;
      }
  in
  let partitioned =
    Kv_scenario.run
      {
        Kv_scenario.default_spec with
        label = "kv-partition";
        measure_ns = (if quick then ms 200 else ms 400);
        partition =
          Some
            {
              Kv_scenario.part_at_ns = ms 60;
              heal_at_ns = ms (if quick then 140 else 220);
              island = [ Kv_scenario.default_spec.Kv_scenario.n_nodes - 1 ];
            };
      }
  in
  let correctness_ok r =
    r.Kv_scenario.oracle_violations = 0 && r.Kv_scenario.converged
  in
  let pp_run r =
    Printf.printf "%s\n%!" (Format.asprintf "%a" Kv_scenario.pp_result r)
  in
  pp_run steady;
  pp_run partitioned;
  (* State-transfer cost vs store size. *)
  let sweep_sizes =
    if quick then [ 100; 1_000; 5_000 ] else [ 100; 1_000; 5_000; 20_000 ]
  in
  let sweep =
    List.map
      (fun entries ->
        let t = Kv_scenario.measure_transfer ~store_entries:entries () in
        Printf.printf
          "  transfer: %6d entries  %8d bytes  %9.0f us to re-sync\n%!"
          t.Kv_scenario.entries_transferred t.Kv_scenario.bytes_transferred
          t.Kv_scenario.xfer_us;
        (entries, t))
      sweep_sizes
  in
  let p50 s = Stats.median s
  and p99 s = Stats.percentile s 99.0
  and p999 s = Stats.percentile s 99.9 in
  (* Per-stage latency decomposition from the run's span histograms:
     where the write p50 goes between token ordering, delivery and
     replica apply. *)
  let stages_json (r : Kv_scenario.result) =
    Json.List
      (List.map
         (fun (s : Aring_obs.Span.stage_report) ->
           Json.Obj
             [
               ("stage", Json.String s.Aring_obs.Span.stage);
               ("count", Json.Int s.Aring_obs.Span.count);
               ("p50_us", Json.Float s.Aring_obs.Span.p50_us);
               ("p99_us", Json.Float s.Aring_obs.Span.p99_us);
               ("p999_us", Json.Float s.Aring_obs.Span.p999_us);
             ])
         (Aring_obs.Span.report_of_metrics r.Kv_scenario.metrics))
  in
  let run_json label (r : Kv_scenario.result) =
    ( label,
      Json.Obj
        [
          ("writes_submitted", Json.Int r.Kv_scenario.writes_submitted);
          ("writes_applied", Json.Int r.Kv_scenario.writes_applied);
          ("write_ops_per_sec", Json.Float r.Kv_scenario.write_ops_per_sec);
          ("write_p50_us", Json.Float (p50 r.Kv_scenario.write_latency_us));
          ("write_p99_us", Json.Float (p99 r.Kv_scenario.write_latency_us));
          ("write_p999_us", Json.Float (p999 r.Kv_scenario.write_latency_us));
          ( "sync_read_p50_us",
            Json.Float (p50 r.Kv_scenario.sync_read_latency_us) );
          ( "sync_read_p99_us",
            Json.Float (p99 r.Kv_scenario.sync_read_latency_us) );
          ( "sync_read_p999_us",
            Json.Float (p999 r.Kv_scenario.sync_read_latency_us) );
          ("local_reads", Json.Int r.Kv_scenario.reads);
          ("installs", Json.Int r.Kv_scenario.installs);
          ("oracle_violations", Json.Int r.Kv_scenario.oracle_violations);
          ("converged", Json.Bool r.Kv_scenario.converged);
          ("latency_stages", stages_json r);
        ] )
  in
  (* Committed budget gate. *)
  let budget_path = "bench/kv_budget.json" in
  let budget =
    try
      let ic = open_in budget_path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some (Json.of_string s)
    with Sys_error _ | Json.Parse_error _ -> None
  in
  let bound name = Option.bind budget (fun b -> json_float (Json.member name b)) in
  let min_ops = bound "min_steady_write_ops_per_sec" in
  let max_p50 = bound "max_steady_write_p50_us" in
  let max_sync_p50 = bound "max_steady_sync_read_p50_us" in
  let max_xfer_per_entry = bound "max_transfer_us_per_entry" in
  let check_max v = function None -> true | Some m -> v <= m in
  let check_min v = function None -> true | Some m -> v >= m in
  let ops_ok = check_min steady.Kv_scenario.write_ops_per_sec min_ops in
  let p50_ok = check_max (p50 steady.Kv_scenario.write_latency_us) max_p50 in
  let sync_ok =
    check_max (p50 steady.Kv_scenario.sync_read_latency_us) max_sync_p50
  in
  (* Amortized transfer cost, judged at the largest sweep point (fixed
     per-transfer overhead dominates the small ones). *)
  let last_entries, last_t = List.nth sweep (List.length sweep - 1) in
  let xfer_per_entry =
    last_t.Kv_scenario.xfer_us /. float_of_int (max 1 last_entries)
  in
  let xfer_ok = check_max xfer_per_entry max_xfer_per_entry in
  let consistent = correctness_ok steady && correctness_ok partitioned in
  let budget_pass = ops_ok && p50_ok && sync_ok && xfer_ok && consistent in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "aring.bench.kv/1");
        ("mode", Json.String (if quick then "quick" else "full"));
        ( "workload",
          Json.Obj
            [
              ("nodes", Json.Int Kv_scenario.default_spec.Kv_scenario.n_nodes);
              ("net", Json.String "1g");
              ( "ops_per_sec_offered",
                Json.Float Kv_scenario.default_spec.Kv_scenario.ops_per_sec );
              ( "value_bytes",
                Json.Int Kv_scenario.default_spec.Kv_scenario.value_bytes );
              ( "key_space",
                Json.Int Kv_scenario.default_spec.Kv_scenario.key_space );
            ] );
        run_json "steady" steady;
        run_json "partitioned" partitioned;
        ( "transfer_sweep",
          Json.List
            (List.map
               (fun (entries, t) ->
                 Json.Obj
                   [
                     ("store_entries", Json.Int entries);
                     ( "entries_transferred",
                       Json.Int t.Kv_scenario.entries_transferred );
                     ( "bytes_transferred",
                       Json.Int t.Kv_scenario.bytes_transferred );
                     ("xfer_us", Json.Float t.Kv_scenario.xfer_us);
                     ("total_installs", Json.Int t.Kv_scenario.total_installs);
                   ])
               sweep) );
        ( "budget",
          Json.Obj
            [
              ( "min_steady_write_ops_per_sec",
                match min_ops with Some m -> Json.Float m | None -> Json.Null );
              ( "max_steady_write_p50_us",
                match max_p50 with Some m -> Json.Float m | None -> Json.Null );
              ( "max_steady_sync_read_p50_us",
                match max_sync_p50 with
                | Some m -> Json.Float m
                | None -> Json.Null );
              ( "max_transfer_us_per_entry",
                match max_xfer_per_entry with
                | Some m -> Json.Float m
                | None -> Json.Null );
              ("transfer_us_per_entry", Json.Float xfer_per_entry);
              ("pass", Json.Bool budget_pass);
            ] );
      ]
  in
  let oc = open_out "BENCH_kv.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_kv.json\n%!";
  if not consistent then
    Printf.printf
      "BUDGET FAIL: consistency oracle violated or replicas failed to \
       converge\n\
       %!";
  if not ops_ok then
    Printf.printf "BUDGET FAIL: %.0f write ops/s below required %.0f\n%!"
      steady.Kv_scenario.write_ops_per_sec (Option.get min_ops);
  if not p50_ok then
    Printf.printf "BUDGET FAIL: write p50 %.0f us above budget %.0f\n%!"
      (p50 steady.Kv_scenario.write_latency_us)
      (Option.get max_p50);
  if not sync_ok then
    Printf.printf "BUDGET FAIL: sync-read p50 %.0f us above budget %.0f\n%!"
      (p50 steady.Kv_scenario.sync_read_latency_us)
      (Option.get max_sync_p50);
  if not xfer_ok then
    Printf.printf
      "BUDGET FAIL: transfer %.2f us/entry above budget %.2f\n%!"
      xfer_per_entry
      (Option.get max_xfer_per_entry);
  if budget = None then
    Printf.printf "note: no readable %s; budget gate skipped\n%!" budget_path;
  if not budget_pass then exit 1

(* ------------------------------------------------------------------ *)
(* Observability overhead benchmark (`-- obs [quick]`)                  *)
(* The flight recorder is always on in every run, so its per-event      *)
(* cost IS protocol overhead: measure ns/event and allocated            *)
(* bytes/event in steady state (after the per-node rings exist), plus   *)
(* the disabled-recorder and detached span/health hook costs (a single  *)
(* ref read each). Emits BENCH_obs.json, gated by bench/obs_budget.json. *)

let bench_obs () =
  let module Flight = Aring_obs.Flight in
  let module Span = Aring_obs.Span in
  let module Health = Aring_obs.Health in
  Printf.printf "=== Observability overhead benchmark%s ===\n%!"
    (if quick then " [QUICK MODE]" else "");
  let iters = if quick then 2_000_000 else 10_000_000 in
  let nodes = 8 in
  (* Warm the recorder: the per-node rings allocate lazily on first
     record; steady state is six int stores into a flat array. *)
  Flight.reset ();
  for node = 0 to nodes - 1 do
    for i = 0 to 1023 do
      Flight.record ~node ~code:Flight.ev_deliver ~a:i ~b:0 ~c:0 ~d:0
    done
  done;
  let time_per_call ~iters f =
    for _ = 1 to 10_000 do
      f ()
    done;
    let t0 = Sys.time () in
    for _ = 1 to iters do
      f ()
    done;
    (Sys.time () -. t0) *. 1e9 /. float_of_int iters
  in
  let i = ref 0 in
  let record_event () =
    incr i;
    Flight.record ~node:(!i land 7) ~code:Flight.ev_data_recv ~a:!i ~b:3 ~c:0
      ~d:0
  in
  let flight_ns = time_per_call ~iters record_event in
  let flight_alloc = alloc_per_call ~iters record_event in
  Flight.set_enabled false;
  let disabled_ns = time_per_call ~iters record_event in
  let disabled_alloc = alloc_per_call ~iters record_event in
  Flight.set_enabled true;
  (* The span/health hooks sit on the engine hot path but are opt-in:
     detached (the default outside sim/fuzz runs) each is one ref read. *)
  let span_hook () = ignore (Span.submit_stamp ()) in
  let span_ns = time_per_call ~iters span_hook in
  let span_alloc = alloc_per_call ~iters span_hook in
  let health_hook () = Health.note_delivery () in
  let health_ns = time_per_call ~iters health_hook in
  let health_alloc = alloc_per_call ~iters health_hook in
  Printf.printf
    "flight recorder (enabled, warm): %7.1f ns/event  %5.2f bytes/event\n\
     flight recorder (disabled):      %7.1f ns/event  %5.2f bytes/event\n\
     span hook (detached):            %7.1f ns/call   %5.2f bytes/call\n\
     health hook (detached):          %7.1f ns/call   %5.2f bytes/call\n%!"
    flight_ns flight_alloc disabled_ns disabled_alloc span_ns span_alloc
    health_ns health_alloc;
  (* Committed budget gate. *)
  let budget_path = "bench/obs_budget.json" in
  let budget =
    try
      let ic = open_in budget_path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some (Json.of_string s)
    with Sys_error _ | Json.Parse_error _ -> None
  in
  let bound name =
    Option.bind budget (fun b -> json_float (Json.member name b))
  in
  let check_max v = function None -> true | Some m -> v <= m in
  let max_flight_ns = bound "max_flight_ns_per_event" in
  let max_flight_alloc = bound "max_flight_alloc_bytes_per_event" in
  let max_disabled_ns = bound "max_disabled_ns_per_event" in
  let max_detached_ns = bound "max_detached_hook_ns" in
  let flight_ns_ok = check_max flight_ns max_flight_ns in
  let flight_alloc_ok = check_max flight_alloc max_flight_alloc in
  let disabled_ok = check_max disabled_ns max_disabled_ns in
  let detached_ok =
    check_max span_ns max_detached_ns && check_max health_ns max_detached_ns
  in
  let pass = flight_ns_ok && flight_alloc_ok && disabled_ok && detached_ok in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "aring.bench.obs/1");
        ("mode", Json.String (if quick then "quick" else "full"));
        ("iters", Json.Int iters);
        ( "flight",
          Json.Obj
            [
              ("ns_per_event", Json.Float flight_ns);
              ("alloc_bytes_per_event", Json.Float flight_alloc);
              ("disabled_ns_per_event", Json.Float disabled_ns);
              ("disabled_alloc_bytes_per_event", Json.Float disabled_alloc);
              ("capacity_per_node", Json.Int (Flight.capacity ()));
            ] );
        ( "hooks_detached",
          Json.Obj
            [
              ("span_ns_per_call", Json.Float span_ns);
              ("span_alloc_bytes_per_call", Json.Float span_alloc);
              ("health_ns_per_call", Json.Float health_ns);
              ("health_alloc_bytes_per_call", Json.Float health_alloc);
            ] );
        ( "budget",
          Json.Obj
            [
              ( "max_flight_ns_per_event",
                match max_flight_ns with
                | Some m -> Json.Float m
                | None -> Json.Null );
              ( "max_flight_alloc_bytes_per_event",
                match max_flight_alloc with
                | Some m -> Json.Float m
                | None -> Json.Null );
              ( "max_disabled_ns_per_event",
                match max_disabled_ns with
                | Some m -> Json.Float m
                | None -> Json.Null );
              ( "max_detached_hook_ns",
                match max_detached_ns with
                | Some m -> Json.Float m
                | None -> Json.Null );
              ("pass", Json.Bool pass);
            ] );
      ]
  in
  let oc = open_out "BENCH_obs.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_obs.json\n%!";
  if not flight_ns_ok then
    Printf.printf "BUDGET FAIL: flight %.1f ns/event above budget %.1f\n%!"
      flight_ns
      (Option.get max_flight_ns);
  if not flight_alloc_ok then
    Printf.printf
      "BUDGET FAIL: flight %.2f allocated bytes/event above budget %.2f\n%!"
      flight_alloc
      (Option.get max_flight_alloc);
  if not disabled_ok then
    Printf.printf
      "BUDGET FAIL: disabled recorder %.1f ns/event above budget %.1f\n%!"
      disabled_ns
      (Option.get max_disabled_ns);
  if not detached_ok then
    Printf.printf
      "BUDGET FAIL: detached hook cost (span %.1f / health %.1f ns) above \
       budget %.1f\n\
       %!"
      span_ns health_ns
      (Option.get max_detached_ns);
  if budget = None then
    Printf.printf "note: no readable %s; budget gate skipped\n%!" budget_path;
  if not pass then exit 1

(* ==================================================================== *)
(* Recovery-exchange scaling: one member of a bootstrapped N-ring       *)
(* crashes with traffic in flight; we measure simulated                 *)
(* crash-to-operational time (detection + gather + exchange + install)  *)
(* and the recovery-traffic counters — exchange floods actually sent,   *)
(* sends avoided by designated-holder dedup, paced bursts, nack-driven  *)
(* resends — per ring size. Emits BENCH_recovery.json, gated by         *)
(* bench/recovery_budget.json.                                          *)

type recovery_row = {
  rr_nodes : int;
  rr_reform_ms : float;
  rr_attempts : int;
  rr_floods : int;
  rr_dedup_saved : int;
  rr_dedup_ratio : float;
  rr_bursts : int;
  rr_resend_reqs : int;
  rr_resends : int;
}

let bench_recovery () =
  let module Health = Aring_obs.Health in
  Printf.printf "=== Recovery-exchange scaling benchmark%s ===\n%!"
    (if quick then " [QUICK MODE]" else "");
  let sizes = if quick then [ 4; 8; 16 ] else [ 4; 8; 16; 32; 64 ] in
  (* Short membership timeouts (as in the membership test suite) keep the
     detection share of reform time at 50 ms across sizes, so scaling in
     the measurement is scaling of gather + exchange + install. *)
  let params =
    {
      (Params.accelerated ()) with
      token_loss_ns = ms 50;
      token_retransmit_ns = ms 10;
      join_retransmit_ns = ms 20;
      consensus_timeout_ns = ms 100;
      merge_probe_ns = ms 80;
    }
  in
  let crash_ns = ms 8 in
  let deadline_ns = ms 5000 in
  let run_size n =
    let members =
      Array.init n (fun me ->
          Member.create ~params ~me ~initial_ring:(Array.init n (fun i -> i))
            ())
    in
    let sim =
      Netsim.create ~net:Profile.gigabit
        ~tiers:(Array.make n Profile.library)
        ~participants:(Array.map Member.participant members)
        ~seed:7L ()
    in
    (* Dense multicast traffic right up to the crash, with the
       highest-numbered node starved of the last 3 ms of multicasts (a
       deterministic straggler — there is no retransmission path once
       the token dies with the crash), leaves the exchange a real
       backlog at every size. *)
    for k = 1 to 160 do
      Netsim.call_at sim ~at:(k * 50_000) (fun () ->
          Member.submit members.(k mod n) Types.Agreed
            (Bytes.of_string (Printf.sprintf "r%d" k)))
    done;
    Netsim.call_at sim ~at:(ms 5) (fun () ->
        Netsim.set_drop sim (fun ~src:_ ~dst -> function
          | Message.Data _ -> dst = n - 1
          | _ -> false));
    Netsim.call_at sim ~at:crash_ns (fun () ->
        Health.note_crash ~node:1;
        Netsim.crash sim 1;
        Netsim.set_drop sim (fun ~src:_ ~dst:_ _ -> false));
    let h = Health.create ~n () in
    let reformed () =
      let ok = ref true in
      for i = 0 to n - 1 do
        if i <> 1 then
          ok :=
            !ok
            && Member.state_name members.(i) = "operational"
            && Member.installs members.(i) >= 2
      done;
      !ok
    in
    let reform_ns = ref (-1) in
    Health.with_health h (fun () ->
        let t = ref (ms 10) in
        while !reform_ns < 0 && !t <= deadline_ns do
          Netsim.run_until sim !t;
          if reformed () then reform_ns := !t;
          t := !t + ms 1
        done);
    if !reform_ns < 0 then begin
      Printf.printf "FAIL: %d-node ring did not re-form within %d ms\n%!" n
        (deadline_ns / ms 1);
      exit 1
    end;
    let report = Health.report h ~now:!reform_ns in
    let sum f = List.fold_left (fun a nr -> a + f nr) 0 report.Health.r_nodes in
    let floods = sum (fun (nr : Health.node_report) -> nr.nr_flood_total) in
    let saved = sum (fun (nr : Health.node_report) -> nr.nr_dedup_saved) in
    let attempts =
      List.fold_left
        (fun a (nr : Health.node_report) -> max a nr.nr_max_attempts)
        0 report.Health.r_nodes
    in
    {
      rr_nodes = n;
      rr_reform_ms = float_of_int (!reform_ns - crash_ns) /. 1e6;
      rr_attempts = attempts;
      rr_floods = floods;
      rr_dedup_saved = saved;
      rr_dedup_ratio =
        (if floods + saved = 0 then 0.
         else float_of_int saved /. float_of_int (floods + saved));
      rr_bursts = sum (fun (nr : Health.node_report) -> nr.nr_bursts);
      rr_resend_reqs = sum (fun (nr : Health.node_report) -> nr.nr_resend_reqs);
      rr_resends = sum (fun (nr : Health.node_report) -> nr.nr_resend_total);
    }
  in
  Printf.printf
    "nodes  reform_ms  attempts  floods  dedup_saved  ratio  bursts  nacks  \
     resends\n%!";
  let rows = List.map run_size sizes in
  List.iter
    (fun r ->
      Printf.printf "%5d  %9.1f  %8d  %6d  %11d  %5.2f  %6d  %5d  %7d\n%!"
        r.rr_nodes r.rr_reform_ms r.rr_attempts r.rr_floods r.rr_dedup_saved
        r.rr_dedup_ratio r.rr_bursts r.rr_resend_reqs r.rr_resends)
    rows;
  (* Committed budget gate. *)
  let budget_path = "bench/recovery_budget.json" in
  let budget =
    try
      let ic = open_in budget_path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Some (Json.of_string s)
    with Sys_error _ | Json.Parse_error _ -> None
  in
  let bound name =
    Option.bind budget (fun b -> json_float (Json.member name b))
  in
  let check_max v = function None -> true | Some m -> v <= m in
  let max_reform = bound "max_reform_ms" in
  let max_attempts = bound "max_formation_attempts" in
  let min_ratio = bound "min_dedup_savings_ratio_largest" in
  let worst_reform =
    List.fold_left (fun a r -> Float.max a r.rr_reform_ms) 0. rows
  in
  let worst_attempts =
    List.fold_left (fun a r -> max a r.rr_attempts) 0 rows
  in
  let largest = List.nth rows (List.length rows - 1) in
  let reform_ok = check_max worst_reform max_reform in
  let attempts_ok = check_max (float_of_int worst_attempts) max_attempts in
  let ratio_ok =
    match min_ratio with None -> true | Some m -> largest.rr_dedup_ratio >= m
  in
  let pass = reform_ok && attempts_ok && ratio_ok in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "aring.bench.recovery/1");
        ("mode", Json.String (if quick then "quick" else "full"));
        ( "sizes",
          Json.List
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("nodes", Json.Int r.rr_nodes);
                     ("reform_ms", Json.Float r.rr_reform_ms);
                     ("formation_attempts", Json.Int r.rr_attempts);
                     ("floods", Json.Int r.rr_floods);
                     ("dedup_saved", Json.Int r.rr_dedup_saved);
                     ("dedup_ratio", Json.Float r.rr_dedup_ratio);
                     ("bursts", Json.Int r.rr_bursts);
                     ("resend_reqs", Json.Int r.rr_resend_reqs);
                     ("resends", Json.Int r.rr_resends);
                   ])
               rows) );
        ( "budget",
          Json.Obj
            [
              ( "max_reform_ms",
                match max_reform with Some m -> Json.Float m | None -> Json.Null
              );
              ( "max_formation_attempts",
                match max_attempts with
                | Some m -> Json.Float m
                | None -> Json.Null );
              ( "min_dedup_savings_ratio_largest",
                match min_ratio with Some m -> Json.Float m | None -> Json.Null
              );
              ("pass", Json.Bool pass);
            ] );
      ]
  in
  let oc = open_out "BENCH_recovery.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_recovery.json\n%!";
  if not reform_ok then
    Printf.printf "BUDGET FAIL: worst reform %.1f ms above budget %.1f\n%!"
      worst_reform (Option.get max_reform);
  if not attempts_ok then
    Printf.printf "BUDGET FAIL: %d formation attempts above budget %.0f\n%!"
      worst_attempts (Option.get max_attempts);
  if not ratio_ok then
    Printf.printf
      "BUDGET FAIL: dedup savings ratio %.2f at %d nodes below budget %.2f\n%!"
      largest.rr_dedup_ratio largest.rr_nodes (Option.get min_ratio);
  if budget = None then
    Printf.printf "note: no readable %s; budget gate skipped\n%!" budget_path;
  if not pass then exit 1

(* ------------------------------------------------------------------ *)
(* Production workload benchmark (`-- load [quick]`)                    *)
(* Open-loop sessions at scale: 2000 concurrent daemon sessions offer   *)
(* a Zipf-skewed KV mix at a fixed aggregate rate, decoupled from       *)
(* completions. A steady run (with slow receivers riding along) gates   *)
(* p99/p99.9 write latency and the applied/offered ratio; a reconnect-  *)
(* storm run gates applied-rate degradation and post-storm recovery.    *)
(* Emits BENCH_load.json, gated by bench/load_budget.json. On a budget  *)
(* failure the flight recorder's tail is dumped for the CI artifact.    *)

module Load = Aring_load.Load

let bench_load () =
  Printf.printf "=== Production workload benchmark%s ===\n%!"
    (if quick then " [QUICK MODE]" else "");
  let steady =
    Load.run
      {
        Load.default_spec with
        label = "load-steady";
        measure_ns = ms (if quick then 150 else 300);
        slow = Some { Load.slow_per_node = 2; drain_per_sec = 2_000.0 };
      }
  in
  let storm_at = if quick then 180 else 200 in
  let storm =
    Load.run
      {
        Load.default_spec with
        label = "load-storm";
        measure_ns = ms (if quick then 200 else 300);
        churn =
          Some
            {
              Load.mean_lifetime_ns = 0;
              reconnect_delay_ns = ms 5;
              storm =
                Some
                  {
                    Load.storm_at_ns = ms storm_at;
                    storm_sessions = 400;
                    storm_window_ns = ms 20;
                  };
            };
      }
  in
  let pp_run r = Printf.printf "%s\n%!" (Format.asprintf "%a" Load.pp_result r) in
  pp_run steady;
  pp_run storm;
  let correctness_ok (r : Load.result) =
    r.Load.oracle_violations = 0 && r.Load.converged
  in
  let p99 s = Stats.percentile s 99.0 in
  let applied_ratio (r : Load.result) =
    if r.Load.writes_offered = 0 then 0.0
    else float_of_int r.Load.writes_applied /. float_of_int r.Load.writes_offered
  in
  (* Committed budget gate. *)
  let budget_path = "bench/load_budget.json" in
  let budget =
    try
      let ic = open_in budget_path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some (Json.of_string s)
    with Sys_error _ | Json.Parse_error _ -> None
  in
  let bound name =
    Option.bind budget (fun b -> json_float (Json.member name b))
  in
  let check_max v = function None -> true | Some m -> v <= m in
  let check_min v = function None -> true | Some m -> v >= m in
  let min_sessions = bound "min_concurrent_sessions" in
  let max_p99 = bound "max_steady_write_p99_us" in
  let max_p999 = bound "max_steady_write_p999_us" in
  let min_ratio = bound "min_applied_offered_ratio" in
  let max_degradation = bound "max_storm_degradation" in
  let max_recovery = bound "max_storm_recovery_ms" in
  let sessions_ok =
    check_min (float_of_int steady.Load.sessions_peak) min_sessions
    && check_min (float_of_int storm.Load.sessions_peak) min_sessions
    (* The ISSUE floor is unconditional: the harness must sustain at
       least 2000 concurrent sessions even with no budget file. *)
    && steady.Load.sessions_peak >= 2000
  in
  let p99_ok = check_max (p99 steady.Load.write_latency_us) max_p99 in
  let p999_ok = check_max (Stats.p999 steady.Load.write_latency_us) max_p999 in
  let ratio_ok = check_min (applied_ratio steady) min_ratio in
  let degradation_ok = check_max storm.Load.storm_degradation max_degradation in
  let recovery_ok =
    storm.Load.storm_recovered_ms >= 0.0
    && check_max storm.Load.storm_recovered_ms max_recovery
    && storm.Load.storm_all_reconnected
  in
  let consistent = correctness_ok steady && correctness_ok storm in
  let budget_pass =
    sessions_ok && p99_ok && p999_ok && ratio_ok && degradation_ok
    && recovery_ok && consistent
  in
  let run_json label (r : Load.result) =
    ( label,
      Json.Obj
        [
          ("sessions_started", Json.Int r.Load.sessions_started);
          ("sessions_peak", Json.Int r.Load.sessions_peak);
          ("reconnects", Json.Int r.Load.reconnects);
          ("ops_offered", Json.Int r.Load.ops_offered);
          ("ops_skipped", Json.Int r.Load.ops_skipped);
          ("writes_offered", Json.Int r.Load.writes_offered);
          ("writes_applied", Json.Int r.Load.writes_applied);
          ("offered_write_rate", Json.Float r.Load.offered_write_rate);
          ("applied_write_rate", Json.Float r.Load.applied_write_rate);
          ("applied_offered_ratio", Json.Float (applied_ratio r));
          ("write_p50_us", Json.Float (Stats.median r.Load.write_latency_us));
          ("write_p99_us", Json.Float (p99 r.Load.write_latency_us));
          ("write_p999_us", Json.Float (Stats.p999 r.Load.write_latency_us));
          ("sync_read_p99_us", Json.Float (p99 r.Load.sync_read_latency_us));
          ("queue_depth_peak", Json.Int r.Load.queue_depth_peak);
          ("queue_depth_end", Json.Int r.Load.queue_depth_end);
          ("slow_inbox_peak", Json.Int r.Load.slow_inbox_peak);
          ("storm_steady_rate", Json.Float r.Load.storm_steady_rate);
          ("storm_rate", Json.Float r.Load.storm_rate);
          ("storm_degradation", Json.Float r.Load.storm_degradation);
          ("storm_recovered_ms", Json.Float r.Load.storm_recovered_ms);
          ("storm_all_reconnected", Json.Bool r.Load.storm_all_reconnected);
          ("oracle_violations", Json.Int r.Load.oracle_violations);
          ("converged", Json.Bool r.Load.converged);
        ] )
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "aring.bench.load/1");
        ("mode", Json.String (if quick then "quick" else "full"));
        ( "workload",
          Json.Obj
            [
              ("nodes", Json.Int Load.default_spec.Load.n_nodes);
              ( "sessions",
                Json.Int
                  (Load.default_spec.Load.n_nodes
                  * Load.default_spec.Load.sessions_per_node) );
              ("groups", Json.Int Load.default_spec.Load.n_groups);
              ("ops_per_sec_offered", Json.Float Load.default_spec.Load.ops_per_sec);
              ("zipf_theta", Json.Float Load.default_spec.Load.zipf_theta);
              ("key_space", Json.Int Load.default_spec.Load.key_space);
              ("storm_sessions", Json.Int 400);
            ] );
        run_json "steady" steady;
        run_json "storm" storm;
        ( "budget",
          Json.Obj
            [
              ( "min_concurrent_sessions",
                match min_sessions with Some m -> Json.Float m | None -> Json.Null );
              ( "max_steady_write_p99_us",
                match max_p99 with Some m -> Json.Float m | None -> Json.Null );
              ( "max_steady_write_p999_us",
                match max_p999 with Some m -> Json.Float m | None -> Json.Null );
              ( "min_applied_offered_ratio",
                match min_ratio with Some m -> Json.Float m | None -> Json.Null );
              ( "max_storm_degradation",
                match max_degradation with
                | Some m -> Json.Float m
                | None -> Json.Null );
              ( "max_storm_recovery_ms",
                match max_recovery with Some m -> Json.Float m | None -> Json.Null );
              ("pass", Json.Bool budget_pass);
            ] );
      ]
  in
  let oc = open_out "BENCH_load.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_load.json\n%!";
  if not consistent then
    Printf.printf
      "BUDGET FAIL: consistency oracle violated or replicas failed to \
       converge\n\
       %!";
  if not sessions_ok then
    Printf.printf
      "BUDGET FAIL: peak concurrent sessions (steady %d, storm %d) below \
       the required floor\n\
       %!"
      steady.Load.sessions_peak storm.Load.sessions_peak;
  if not p99_ok then
    Printf.printf "BUDGET FAIL: steady write p99 %.0f us above budget %.0f\n%!"
      (p99 steady.Load.write_latency_us)
      (Option.get max_p99);
  if not p999_ok then
    Printf.printf
      "BUDGET FAIL: steady write p99.9 %.0f us above budget %.0f\n%!"
      (Stats.p999 steady.Load.write_latency_us)
      (Option.get max_p999);
  if not ratio_ok then
    Printf.printf
      "BUDGET FAIL: applied/offered ratio %.3f below budget %.3f\n%!"
      (applied_ratio steady) (Option.get min_ratio);
  if not degradation_ok then
    Printf.printf
      "BUDGET FAIL: storm degradation %.0f%% above budget %.0f%%\n%!"
      (100.0 *. storm.Load.storm_degradation)
      (100.0 *. Option.get max_degradation);
  if not recovery_ok then
    Printf.printf
      "BUDGET FAIL: storm recovery %.1f ms (all reconnected: %b) misses \
       budget %.1f ms\n\
       %!"
      storm.Load.storm_recovered_ms storm.Load.storm_all_reconnected
      (match max_recovery with Some m -> m | None -> nan);
  if budget = None then
    Printf.printf "note: no readable %s; budget gate skipped\n%!" budget_path;
  if not budget_pass then begin
    (* Post-mortem for the CI artifact, mirroring the fuzz steps. *)
    Aring_obs.Flight.dump_jsonl_file "BENCH_load_flight.jsonl";
    Printf.printf "flight dump written to BENCH_load_flight.jsonl\n%!";
    exit 1
  end

(* -------------------------------------------------------------------- *)
(* Multi-ring sharded ordering: ring-scaling benchmark                  *)
(* The same saturating write-heavy open-loop workload against 1, 2 and  *)
(* 4 rings sharing the physical cluster, keys sharded across rings and  *)
(* a deterministic learner merge reassembling one total order. The      *)
(* gates: aggregate merged throughput at 4 rings must scale >= the      *)
(* committed factor over single-ring, and the merge-added p99 (ring     *)
(* apply -> merged emergence) must stay within budget. Emits            *)
(* BENCH_multiring.json, gated by bench/multiring_budget.json.          *)

let bench_multiring () =
  let module Mload = Aring_multiring.Mload in
  Printf.printf "=== Multi-ring sharded ordering benchmark%s ===\n%!"
    (if quick then " [QUICK MODE]" else "");
  (* Write-only mix at an offered rate far past single-ring capacity
     (~290k writes/s on this profile): open-loop, so the saturated
     single ring queues while extra rings add real ordered throughput.
     Two deliberate choices isolate ring scaling:

     - Uniform keys, not Zipf. The round-robin merge emits at
       [rings x slowest-shard rate] — skips cover *idle* rings, not
       busy-but-slower ones — so shard skew caps aggregate throughput at
       the coldest shard's pace (with the default Zipf 0.99 mix the
       coldest of 4 shards draws ~20% of the load and scaling tops out
       near 0.8x). That skew ceiling is a property worth knowing, but it
       is the sharding function's story; the scaling gate uses uniform
       keys so it measures the rings.
     - No mcas in the sweep. A cross-shard cas parks its shard for a
       decide round-trip, which measures the mcas protocol, not ring
       scaling; a separate mcas run keeps that path hot and is gated on
       consistency. *)
  let spec rings =
    {
      Load.default_spec with
      label = Printf.sprintf "multiring-%dr" rings;
      rings;
      sessions_per_node = 100;
      ops_per_sec = 1_000_000.0;
      zipf_theta = 0.0;
      read_permille = 0;
      sync_read_permille = 0;
      cas_permille = 50;
      del_permille = 50;
      mcas_permille = 0;
      measure_ns = ms (if quick then 150 else 300);
      drain_ns = ms 2_000;
    }
  in
  let runs = List.map (fun r -> Mload.run (spec r)) [ 1; 2; 4 ] in
  let mcas_run =
    Mload.run
      {
        (spec 4) with
        label = "multiring-4r-mcas";
        ops_per_sec = 30_000.0;
        mcas_permille = 10;
      }
  in
  List.iter
    (fun r -> Printf.printf "%s\n%!" (Format.asprintf "%a" Mload.pp_result r))
    (runs @ [ mcas_run ]);
  let find rings =
    List.find (fun r -> r.Mload.spec.Load.rings = rings) runs
  in
  let r1 = find 1 and r2 = find 2 and r4 = find 4 in
  let p99 s = Stats.percentile s 99.0 in
  let speedup (r : Mload.result) =
    if r1.Mload.applied_write_rate <= 0.0 then 0.0
    else r.Mload.applied_write_rate /. r1.Mload.applied_write_rate
  in
  let correctness_ok (r : Mload.result) =
    r.Mload.oracle_violations = 0 && r.Mload.converged
  in
  (* Committed budget gate. *)
  let budget_path = "bench/multiring_budget.json" in
  let budget =
    try
      let ic = open_in budget_path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some (Json.of_string s)
    with Sys_error _ | Json.Parse_error _ -> None
  in
  let bound name =
    Option.bind budget (fun b -> json_float (Json.member name b))
  in
  let check_max v = function None -> true | Some m -> v <= m in
  let check_min v = function None -> true | Some m -> v >= m in
  let min_speedup_4r = bound "min_speedup_4r" in
  let min_speedup_2r = bound "min_speedup_2r" in
  let max_merge_p99 = bound "max_merge_wait_p99_us" in
  let merge_p99_worst = Float.max (p99 r2.Mload.merge_wait_us) (p99 r4.Mload.merge_wait_us) in
  let speedup_ok =
    check_min (speedup r4) min_speedup_4r
    && check_min (speedup r2) min_speedup_2r
    (* The ISSUE floor is unconditional: 4 rings must deliver at least
       3x single-ring aggregate applied throughput, budget file or
       not. *)
    && speedup r4 >= 3.0
  in
  let merge_ok = check_max merge_p99_worst max_merge_p99 in
  let consistent = List.for_all correctness_ok (runs @ [ mcas_run ]) in
  let budget_pass = speedup_ok && merge_ok && consistent in
  let run_json ?name (r : Mload.result) =
    ( (match name with
      | Some n -> n
      | None -> Printf.sprintf "rings_%d" r.Mload.spec.Load.rings),
      Json.Obj
        [
          ("rings", Json.Int r.Mload.spec.Load.rings);
          ("ops_offered", Json.Int r.Mload.ops_offered);
          ("writes_offered", Json.Int r.Mload.writes_offered);
          ("writes_applied", Json.Int r.Mload.writes_applied);
          ("offered_write_rate", Json.Float r.Mload.offered_write_rate);
          ("applied_write_rate", Json.Float r.Mload.applied_write_rate);
          ("speedup_vs_1r", Json.Float (speedup r));
          ("write_p50_us", Json.Float (Stats.median r.Mload.write_latency_us));
          ("write_p99_us", Json.Float (p99 r.Mload.write_latency_us));
          ("merge_wait_p50_us", Json.Float (Stats.median r.Mload.merge_wait_us));
          ("merge_wait_p99_us", Json.Float (p99 r.Mload.merge_wait_us));
          ( "per_ring_applied",
            Json.List
              (Array.to_list
                 (Array.map (fun n -> Json.Int n) r.Mload.per_ring_applied)) );
          ("mcas_submitted", Json.Int r.Mload.mcas_submitted);
          ("mcas_commits", Json.Int r.Mload.mcas_commits);
          ("mcas_aborts", Json.Int r.Mload.mcas_aborts);
          ("mcas_retries", Json.Int r.Mload.mcas_retries);
          ("skip_credits_spent", Json.Int r.Mload.skip_credits_spent);
          ("queue_depth_peak", Json.Int r.Mload.queue_depth_peak);
          ("queue_depth_end", Json.Int r.Mload.queue_depth_end);
          ("oracle_violations", Json.Int r.Mload.oracle_violations);
          ("converged", Json.Bool r.Mload.converged);
        ] )
  in
  let doc =
    Json.Obj
      ([
         ("schema", Json.String "aring.bench.multiring/1");
         ("mode", Json.String (if quick then "quick" else "full"));
         ( "workload",
           Json.Obj
             [
               ("nodes_per_ring", Json.Int (spec 1).Load.n_nodes);
               ("sessions_per_node", Json.Int (spec 1).Load.sessions_per_node);
               ("ops_per_sec_offered", Json.Float (spec 1).Load.ops_per_sec);
               ("zipf_theta", Json.Float (spec 1).Load.zipf_theta);
               ("key_space", Json.Int (spec 1).Load.key_space);
               ("mcas_permille", Json.Int mcas_run.Mload.spec.Load.mcas_permille);
             ] );
       ]
      @ List.map (fun r -> run_json r) runs
      @ [
          run_json ~name:"rings_4_mcas" mcas_run;
        ]
      @ [
          ( "budget",
            Json.Obj
              [
                ( "min_speedup_4r",
                  match min_speedup_4r with
                  | Some m -> Json.Float m
                  | None -> Json.Null );
                ( "min_speedup_2r",
                  match min_speedup_2r with
                  | Some m -> Json.Float m
                  | None -> Json.Null );
                ( "max_merge_wait_p99_us",
                  match max_merge_p99 with
                  | Some m -> Json.Float m
                  | None -> Json.Null );
                ("pass", Json.Bool budget_pass);
              ] );
        ])
  in
  let oc = open_out "BENCH_multiring.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_multiring.json\n%!";
  if not consistent then
    Printf.printf
      "BUDGET FAIL: consistency oracle violated or a run failed to \
       converge\n\
       %!";
  if not speedup_ok then
    Printf.printf
      "BUDGET FAIL: ring scaling 2r=%.2fx 4r=%.2fx misses the committed \
       floors (4r floor is 3.0x unconditionally)\n\
       %!"
      (speedup r2) (speedup r4);
  if not merge_ok then
    Printf.printf
      "BUDGET FAIL: merge-added p99 %.0f us above budget %.0f\n%!"
      merge_p99_worst
      (match max_merge_p99 with Some m -> m | None -> nan);
  if budget = None then
    Printf.printf "note: no readable %s; budget gate skipped\n%!" budget_path;
  if not budget_pass then begin
    (* Post-mortem for the CI artifact, mirroring the fuzz steps. *)
    Aring_obs.Flight.dump_jsonl_file "BENCH_multiring_flight.jsonl";
    Printf.printf "flight dump written to BENCH_multiring_flight.jsonl\n%!";
    exit 1
  end

let () =
  if mode_multiring then begin
    bench_multiring ();
    exit 0
  end;
  if mode_load then begin
    bench_load ();
    exit 0
  end;
  if mode_recovery then begin
    bench_recovery ();
    exit 0
  end;
  if mode_obs then begin
    bench_obs ();
    exit 0
  end;
  if mode_kv then begin
    bench_kv ();
    exit 0
  end;
  if mode_hotpath then begin
    hotpath ();
    exit 0
  end;
  if mode_adaptive then begin
    adaptive ();
    exit 0
  end;
  Printf.printf
    "Accelerated Ring reproduction benchmarks%s\n\
     8 nodes; calibrated simulator profiles (see DESIGN.md / EXPERIMENTS.md)\n"
    (if quick then " [QUICK MODE]" else "");
  fig1 ();
  rotation_profile ();
  fig2 ();
  fig3 ();
  fig4 ();
  fig5 ();
  fig6 ();
  fig7 ();
  headline ();
  related ();
  related_ring_paxos ();
  ablations ();
  micro ();
  Printf.printf "\nDone.\n"
